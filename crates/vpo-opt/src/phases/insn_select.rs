//! Phase `s` — instruction selection.
//!
//! "Combines pairs or triples of instructions together where the
//! instructions are linked by set/use dependencies. After combining the
//! effects of the instructions, it also performs constant folding and
//! checks if the resulting effect is a legal instruction before committing
//! to the transformation."
//!
//! The combiner works within basic blocks: a definition `t = e` whose value
//! is consumed exactly once later in the same block (with `t` dead
//! afterwards and no interfering definitions or memory writes in between)
//! is symbolically substituted into its consumer; the merged RTL is
//! constant-folded and committed only if the target accepts it as one
//! machine instruction. Triples and longer chains fall out of running the
//! pair rule to a fixpoint.
//!
//! This phase is always active on unoptimized code (naive code generation
//! emits maximally simple RTLs), and it is re-enabled by register
//! allocation, which turns loads and stores into collapsible
//! register-to-register moves — both observations from the paper.

use vpo_rtl::cfg::Cfg;
use vpo_rtl::liveness::{Item, Liveness};
use vpo_rtl::{Function, Inst};

use super::fold;
use crate::target::Target;

/// Runs instruction selection; returns whether anything changed.
pub fn run(f: &mut Function, target: &Target) -> bool {
    let mut changed = false;
    // Standalone constant folding first (part of this phase in VPO).
    changed |= fold_pass(f, target);
    loop {
        if !combine_once(f, target) {
            break;
        }
        changed = true;
        // Folding opportunities may appear after combining.
        fold_pass(f, target);
    }
    changed
}

/// Constant-folds every instruction whose folded form is still legal.
fn fold_pass(f: &mut Function, target: &Target) -> bool {
    let mut changed = false;
    for b in &mut f.blocks {
        for inst in &mut b.insts {
            // Detect before cloning: most instructions fold nothing, and
            // the detector is a pure traversal.
            let mut any = false;
            inst.visit_exprs(&mut |e| any |= fold::would_fold(e));
            if !any {
                continue;
            }
            let mut candidate = inst.clone();
            candidate.visit_exprs_mut(&mut |e| {
                fold::fold_in_place(e);
            });
            if target.legal_inst(&candidate) {
                *inst = candidate;
                changed = true;
            }
        }
    }
    changed
}

/// Attempts one combine anywhere in the function; returns whether one
/// happened.
fn combine_once(f: &mut Function, target: &Target) -> bool {
    // Liveness is only consulted when a candidate survives every cheaper
    // test, so it is computed lazily — `f` is not mutated before a commit,
    // so the deferred analysis sees exactly the function the eager one
    // would have seen. The operand buffer is reused across candidates.
    let mut lv: Option<Liveness> = None;
    let mut e_regs: Vec<vpo_rtl::Reg> = Vec::new();
    for bi in 0..f.blocks.len() {
        let n = f.blocks[bi].insts.len();
        'def: for ii in 0..n {
            let insts = &f.blocks[bi].insts;
            let Inst::Assign { dst: t, .. } = &insts[ii] else {
                continue;
            };
            let t = *t;
            // Find the consumers of t after ii, stopping at a redefinition.
            let mut use_site: Option<usize> = None;
            let mut occurrences = 0usize;
            let mut redefined_at: Option<usize> = None;
            for (jj, inst) in insts.iter().enumerate().take(n).skip(ii + 1) {
                let occ_here = inst.count_reg_uses(t);
                if occ_here > 0 {
                    occurrences += occ_here;
                    if use_site.is_none() {
                        use_site = Some(jj);
                    } else if use_site != Some(jj) {
                        continue 'def; // multiple consumer instructions
                    }
                }
                if inst.def() == Some(t) {
                    redefined_at = Some(jj);
                    break;
                }
            }
            let Some(jj) = use_site else { continue };
            if occurrences != 1 {
                continue;
            }
            // t must be dead after the consumer.
            let dead_after = match redefined_at {
                Some(_) => true, // no further uses before the redefinition
                None => {
                    let lv = lv.get_or_insert_with(|| {
                        let cfg = Cfg::build(f);
                        Liveness::compute(f, &cfg)
                    });
                    let ti = lv.index_of(Item::Reg(t));
                    ti.map(|x| !lv.live_out[bi].contains(x)).unwrap_or(true)
                }
            };
            if !dead_after {
                continue;
            }
            // Interference between def and use: nothing may redefine e's
            // operands, and if e reads memory nothing may write memory.
            let insts = &f.blocks[bi].insts;
            let e = match &insts[ii] {
                Inst::Assign { src, .. } => src,
                _ => unreachable!("candidate shape checked above"),
            };
            e_regs.clear();
            e.collect_regs(&mut e_regs);
            let e_reads_mem = e.reads_memory();
            for inst in &insts[ii + 1..jj] {
                if let Some(d) = inst.def() {
                    if e_regs.contains(&d) {
                        continue 'def;
                    }
                }
                if e_reads_mem && inst.writes_memory() {
                    continue 'def;
                }
            }
            // The consumer itself may also not redefine e's operands before
            // using them... RTL semantics evaluate the RHS before the
            // write-back, so a consumer like `x = t + x` is fine even when
            // x ∈ e_regs.
            // Build and legality-check the merged instruction.
            let mut merged = insts[jj].clone();
            let replaced = merged.substitute_reg_uses(t, e);
            debug_assert_eq!(replaced, 1);
            merged.visit_exprs_mut(&mut |x| {
                fold::fold_in_place(x);
            });
            if target.legal_inst(&merged) {
                f.blocks[bi].insts[jj] = merged;
                f.blocks[bi].insts.remove(ii);
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_rtl::builder::FunctionBuilder;
    use vpo_rtl::{BinOp, Cond, Expr, Reg, Width};

    fn t() -> Target {
        Target::default()
    }

    #[test]
    fn paper_figure3_merge() {
        // r[2]=1; r[3]=r[4]+r[2]  =>  r[3]=r[4]+1
        let mut b = FunctionBuilder::new("f");
        let r2 = b.reg();
        let r3 = b.reg();
        let r4 = b.param();
        b.assign(r2, Expr::Const(1));
        b.assign(r3, Expr::bin(BinOp::Add, Expr::Reg(r4), Expr::Reg(r2)));
        b.ret(Some(Expr::Reg(r3)));
        let mut f = b.finish();
        assert!(run(&mut f, &t()));
        // r[3]=r[4]+1; RET r[3] — merging r3 into RET would produce an
        // illegal return operand, so exactly the Figure 3 pair merges.
        assert_eq!(f.inst_count(), 2);
        assert!(matches!(
            &f.blocks[0].insts[0],
            Inst::Assign { src: Expr::Bin(BinOp::Add, a, c), .. }
                if matches!(&**a, Expr::Reg(x) if *x == r4)
                    && matches!(&**c, Expr::Const(1))
        ));
    }

    #[test]
    fn address_formation_for_locals() {
        // t0=&loc; t1=M[t0]  =>  t1=M[&loc]   (enables register allocation)
        let mut b = FunctionBuilder::new("f");
        let v = b.local("v", 4);
        let t0 = b.reg();
        let t1 = b.reg();
        b.assign(t0, Expr::LocalAddr(v));
        b.assign(t1, Expr::load(Width::Word, Expr::Reg(t0)));
        b.ret(Some(Expr::Reg(t1)));
        let mut f = b.finish();
        assert!(run(&mut f, &t()));
        assert!(matches!(
            &f.blocks[0].insts[0],
            Inst::Assign { src: Expr::Load(_, a), .. } if matches!(&**a, Expr::LocalAddr(_))
        ));
    }

    #[test]
    fn collapses_register_moves() {
        // t0 = x; t1 = t0 + 1  =>  t1 = x + 1
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let t0 = b.reg();
        let t1 = b.reg();
        b.assign(t0, Expr::Reg(x));
        b.assign(t1, Expr::bin(BinOp::Add, Expr::Reg(t0), Expr::Const(1)));
        b.ret(Some(Expr::Reg(t1)));
        let mut f = b.finish();
        assert!(run(&mut f, &t()));
        assert_eq!(f.inst_count(), 2);
    }

    #[test]
    fn refuses_illegal_merges() {
        // t0=M[a]; t1=t0+r — merging would nest a load inside an add.
        let mut b = FunctionBuilder::new("f");
        let a = b.param();
        let r = b.param();
        let t0 = b.reg();
        let t1 = b.reg();
        b.assign(t0, Expr::load(Width::Word, Expr::Reg(a)));
        b.assign(t1, Expr::bin(BinOp::Add, Expr::Reg(t0), Expr::Reg(r)));
        b.ret(Some(Expr::Reg(t1)));
        let mut f = b.finish();
        assert!(!run(&mut f, &t()));
        assert_eq!(f.inst_count(), 3);
    }

    #[test]
    fn respects_memory_interference() {
        // t0=M[a]; M[a]=z; t1=t0+1 — the load must not move past the store.
        let mut b = FunctionBuilder::new("f");
        let a = b.param();
        let z = b.param();
        let t0 = b.reg();
        let t1 = b.reg();
        b.assign(t0, Expr::load(Width::Word, Expr::Reg(a)));
        b.store(Width::Word, Expr::Reg(a), Expr::Reg(z));
        b.assign(t1, Expr::bin(BinOp::Add, Expr::Reg(t0), Expr::Const(1)));
        b.ret(Some(Expr::Reg(t1)));
        let mut f = b.finish();
        assert!(!run(&mut f, &t()));
    }

    #[test]
    fn respects_operand_redefinition() {
        // t0=x+1; x=y+1; IC=t0?5 — merging t0 into the compare would move
        // the read of x past its redefinition.
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let y = b.param();
        let t0 = b.reg();
        b.assign(t0, Expr::bin(BinOp::Add, Expr::Reg(x), Expr::Const(1)));
        b.assign(x, Expr::bin(BinOp::Add, Expr::Reg(y), Expr::Const(1)));
        b.compare(Expr::Reg(t0), Expr::Const(5));
        let l = b.new_label();
        b.cond_branch(Cond::Lt, l);
        b.ret(Some(Expr::Reg(x)));
        b.start_block(l);
        b.ret(Some(Expr::Const(0)));
        let mut f = b.finish();
        assert!(!run(&mut f, &t()));
    }

    #[test]
    fn combines_into_compare() {
        // t0 = x + 4; IC = t0 ? 0  =>  illegal (compare lhs must be reg)...
        // but t0 = x; IC = t0 ? 4000 => IC = x ? 4000 is legal.
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let t0 = b.reg();
        let l = b.new_label();
        b.assign(t0, Expr::Reg(x));
        b.compare(Expr::Reg(t0), Expr::Const(4000));
        b.cond_branch(Cond::Lt, l);
        b.ret(Some(Expr::Const(0)));
        b.start_block(l);
        b.ret(Some(Expr::Const(1)));
        let mut f = b.finish();
        assert!(run(&mut f, &t()));
        assert!(matches!(
            &f.blocks[0].insts[0],
            Inst::Compare { lhs: Expr::Reg(r), .. } if *r == x
        ));
    }

    #[test]
    fn triple_chain_collapses() {
        // t0=1; t1=t0+2; t2=t1+3; ret t2  =>  t2=6 (two merges + folds)
        let mut b = FunctionBuilder::new("f");
        let t0 = b.reg();
        let t1 = b.reg();
        let t2 = b.reg();
        b.assign(t0, Expr::Const(1));
        b.assign(t1, Expr::bin(BinOp::Add, Expr::Reg(t0), Expr::Const(2)));
        b.assign(t2, Expr::bin(BinOp::Add, Expr::Reg(t1), Expr::Const(3)));
        b.ret(Some(Expr::Reg(t2)));
        let mut f = b.finish();
        assert!(run(&mut f, &t()));
        // The whole chain folds into `RET 6` (a legal immediate return).
        assert_eq!(f.inst_count(), 1);
        assert!(matches!(&f.blocks[0].insts[0], Inst::Return { value: Some(Expr::Const(6)) }));
        assert!(!run(&mut f, &t()));
    }

    #[test]
    fn hard_registers_combine_after_assignment() {
        // Mirrors the post-regalloc situation: r1 = r2; r3 = r1 + 1.
        let mut f = vpo_rtl::Function::new("f");
        f.flags.regs_assigned = true;
        let r1 = Reg::hard(1);
        let r2 = Reg::hard(2);
        let r3 = Reg::hard(3);
        f.params.push(r2);
        f.blocks[0].insts = vec![
            Inst::Assign { dst: r1, src: Expr::Reg(r2) },
            Inst::Assign { dst: r3, src: Expr::bin(BinOp::Add, Expr::Reg(r1), Expr::Const(1)) },
            Inst::Return { value: Some(Expr::Reg(r3)) },
        ];
        assert!(run(&mut f, &t()));
        assert_eq!(f.inst_count(), 2);
    }
}
