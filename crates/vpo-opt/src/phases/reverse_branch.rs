//! Phase `r` — reverse branches.
//!
//! "Removes an unconditional jump by reversing a conditional branch
//! branching over the jump." In canonical block form (a conditional branch
//! always terminates its block) the pattern spans three positional blocks:
//!
//! ```text
//! A: ...; PC=IC<c>,L1;      (falls into B)
//! B: PC=L2;                 (entered only by fall-through)
//! C: L1 ...
//! ```
//!
//! which becomes `A: ...; PC=IC<!c>,L2;` with `B` deleted.

use vpo_rtl::{Function, Inst};

use crate::normalize::label_refs;
use crate::target::Target;

/// Runs branch reversal; returns whether anything changed.
pub fn run(f: &mut Function, _target: &Target) -> bool {
    let mut changed = false;
    loop {
        if !reverse_once(f) {
            break;
        }
        changed = true;
    }
    changed
}

fn reverse_once(f: &mut Function) -> bool {
    let refs = label_refs(f);
    for a in 0..f.blocks.len() {
        // Cross-block shape: A ends in CondBranch to the block after B,
        // B is a fall-through-only trivial jump.
        if a + 2 < f.blocks.len() {
            let b = a + 1;
            let (cond, t1) = match f.blocks[a].insts.last() {
                Some(Inst::CondBranch { cond, target }) => (*cond, *target),
                _ => (vpo_rtl::Cond::Eq, vpo_rtl::Label(u32::MAX)),
            };
            if t1 == f.blocks[a + 2].label
                && refs.get(&f.blocks[b].label).copied().unwrap_or(0) == 0
            {
                if let Some(t2) = f.blocks[b].as_trivial_jump() {
                    if t2 != t1 {
                        let n = f.blocks[a].insts.len();
                        f.blocks[a].insts[n - 1] =
                            Inst::CondBranch { cond: cond.negate(), target: t2 };
                        f.blocks.remove(b);
                        return true;
                    }
                }
            }
        }
        // Legacy in-block shape: [..., CondBranch(c, next), Jump t2].
        if a + 1 < f.blocks.len() {
            let next_label = f.blocks[a + 1].label;
            let insts = &mut f.blocks[a].insts;
            let n = insts.len();
            if n >= 2 {
                if let (Inst::CondBranch { cond, target: t1 }, Inst::Jump { target: t2 }) =
                    (&insts[n - 2], &insts[n - 1])
                {
                    let (cond, t1, t2) = (*cond, *t1, *t2);
                    if t1 == next_label && t2 != next_label {
                        insts[n - 2] = Inst::CondBranch { cond: cond.negate(), target: t2 };
                        insts.pop();
                        return true;
                    }
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_rtl::builder::FunctionBuilder;
    use vpo_rtl::{Cond, Expr};

    #[test]
    fn reverses_branch_over_jump_block() {
        // The canonical-form pattern produced by `if (cond) break;`-style
        // code: a conditional branch over a jump-only block.
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let near = b.new_label();
        let far = b.new_label();
        let jump_blk = b.new_label();
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.cond_branch(Cond::Lt, near);
        b.start_block(jump_blk);
        b.jump(far);
        b.start_block(near);
        b.ret(Some(Expr::Const(1)));
        b.start_block(far);
        b.ret(Some(Expr::Const(2)));
        let mut f = b.finish();
        assert!(run(&mut f, &Target::default()));
        assert_eq!(f.inst_count(), 4);
        match f.blocks[0].insts.last().unwrap() {
            Inst::CondBranch { cond, target } => {
                assert_eq!(*cond, Cond::Ge);
                assert_eq!(*target, far);
            }
            other => panic!("unexpected {other}"),
        }
        // The jump-only block is gone; `near` now falls through.
        assert_eq!(f.blocks[1].label, near);
        assert!(!run(&mut f, &Target::default()));
    }

    #[test]
    fn keeps_jump_block_that_is_a_branch_target() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let near = b.new_label();
        let far = b.new_label();
        let jump_blk = b.new_label();
        let cont = b.new_label();
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.cond_branch(Cond::Lt, near);
        b.start_block(jump_blk);
        b.jump(far);
        b.start_block(near);
        // Another branch targets the jump block: reversing would lose it.
        b.compare(Expr::Reg(x), Expr::Const(5));
        b.cond_branch(Cond::Gt, jump_blk);
        b.start_block(cont);
        b.ret(Some(Expr::Const(1)));
        b.start_block(far);
        b.ret(Some(Expr::Const(2)));
        let mut f = b.finish();
        assert!(!run(&mut f, &Target::default()));
    }

    #[test]
    fn dormant_when_branch_is_already_good() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let far = b.new_label();
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.cond_branch(Cond::Lt, far);
        b.ret(None);
        b.start_block(far);
        b.ret(Some(Expr::Const(2)));
        let mut f = b.finish();
        assert!(!run(&mut f, &Target::default()));
    }

    #[test]
    fn legacy_in_block_shape_still_handled() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let near = b.new_label();
        let far = b.new_label();
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.cond_branch(Cond::Lt, near);
        b.jump(far);
        b.start_block(near);
        b.ret(Some(Expr::Const(1)));
        b.start_block(far);
        b.ret(Some(Expr::Const(2)));
        let mut f = b.finish();
        assert!(run(&mut f, &Target::default()));
        assert_eq!(f.inst_count(), 4);
    }
}
