//! Phase `o` — evaluation order determination.
//!
//! "Reorders instructions within a single basic block in an attempt to use
//! fewer registers." This phase is legal only *before* register
//! assignment: it list-schedules each block's instructions so that pseudo
//! temporaries die as early as possible, reducing the number of hardware
//! registers the compulsory assignment will need.
//!
//! The scheduler is deterministic and — crucially for the enumeration
//! engine — *idempotent*: scheduling an already-scheduled block reproduces
//! it, because ties are broken by current position and the dependence
//! graph is position-independent.

use std::collections::HashMap;

use vpo_rtl::liveness::Item;
use vpo_rtl::{Function, Inst, Reg, RegClass};

use crate::target::Target;

/// Runs evaluation-order determination; returns whether anything changed.
pub fn run(f: &mut Function, _target: &Target) -> bool {
    let mut changed = false;
    let params = f.params.clone();
    for bi in 0..f.blocks.len() {
        let order = schedule(&f.blocks[bi].insts, &params);
        if order.iter().enumerate().any(|(pos, &old)| pos != old) {
            let insts = std::mem::take(&mut f.blocks[bi].insts);
            let mut slots: Vec<Option<Inst>> = insts.into_iter().map(Some).collect();
            f.blocks[bi].insts =
                order.iter().map(|&i| slots[i].take().expect("each index once")).collect();
            changed = true;
        }
    }
    changed
}

/// Computes a pressure-minimizing topological order of one block's
/// instructions; returns the permutation as original indices.
fn schedule(insts: &[Inst], params: &[Reg]) -> Vec<usize> {
    let n = insts.len();
    if n <= 1 {
        return (0..n).collect();
    }
    // Dependence edges i -> j (i must precede j).
    let mut preds_count = vec![0usize; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let add_edge = |a: usize, b: usize, succs: &mut Vec<Vec<usize>>, preds: &mut Vec<usize>| {
        if a != b && !succs[a].contains(&b) {
            succs[a].push(b);
            preds[b] += 1;
        }
    };
    let uses_defs: Vec<(Vec<Item>, Vec<Item>)> = insts.iter().map(items_of).collect();
    for j in 0..n {
        for i in 0..j {
            let (ui, di) = &uses_defs[i];
            let (uj, dj) = &uses_defs[j];
            let conflict =
                // flow: i defs something j uses
                di.iter().any(|d| uj.contains(d))
                // anti: i uses something j defs
                || ui.iter().any(|u| dj.contains(u))
                // output: both define the same item
                || di.iter().any(|d| dj.contains(d))
                // memory order
                || (insts[i].writes_memory() && (insts[j].reads_memory() || insts[j].writes_memory()))
                || (insts[i].reads_memory() && insts[j].writes_memory())
                // control instructions are fences
                || insts[i].is_control()
                || insts[j].is_control();
            if conflict {
                add_edge(i, j, &mut succs, &mut preds_count);
            }
        }
    }
    // Remaining-use counts per pseudo temporary (parameters are live from
    // entry regardless, so they do not count as freeable temporaries).
    let is_temp = |r: Reg| r.class == RegClass::Pseudo && !params.contains(&r);
    let mut remaining_uses: HashMap<Reg, usize> = HashMap::new();
    for inst in insts {
        let mut uses = Vec::new();
        inst.collect_uses(&mut uses);
        for u in uses {
            if is_temp(u) {
                *remaining_uses.entry(u).or_insert(0) += 1;
            }
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| preds_count[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut scheduled = vec![false; n];
    while let Some(pick) = pick_best(&ready, insts, &remaining_uses, &is_temp) {
        ready.retain(|&r| r != pick);
        scheduled[pick] = true;
        order.push(pick);
        // Update remaining uses.
        let mut uses = Vec::new();
        insts[pick].collect_uses(&mut uses);
        for u in uses {
            if is_temp(u) {
                if let Some(c) = remaining_uses.get_mut(&u) {
                    *c = c.saturating_sub(1);
                }
            }
        }
        for &s in &succs[pick] {
            preds_count[s] -= 1;
            if preds_count[s] == 0 && !scheduled[s] {
                ready.push(s);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "dependence graph must be acyclic");
    order
}

/// Chooses the ready instruction that frees the most pseudo temporaries
/// (uses whose remaining count drops to zero) net of the pseudo it
/// defines; ties go to the earliest current position, which makes the
/// schedule idempotent.
fn pick_best<F: Fn(Reg) -> bool>(
    ready: &[usize],
    insts: &[Inst],
    remaining: &HashMap<Reg, usize>,
    is_temp: &F,
) -> Option<usize> {
    ready
        .iter()
        .copied()
        .map(|i| {
            let mut uses = Vec::new();
            insts[i].collect_uses(&mut uses);
            uses.sort_unstable();
            uses.dedup();
            let frees = uses
                .iter()
                .filter(|u| {
                    is_temp(**u)
                        && remaining.get(u).copied().unwrap_or(0) == insts[i].uses_count(**u)
                })
                .count() as i64;
            let creates = match insts[i].def() {
                Some(d) if is_temp(d) => 1i64,
                _ => 0,
            };
            (frees - creates, i)
        })
        .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)))
        .map(|(_, i)| i)
}

/// Items used and defined by an instruction, for dependence edges.
fn items_of(inst: &Inst) -> (Vec<Item>, Vec<Item>) {
    let mut uses = Vec::new();
    let mut regs = Vec::new();
    inst.collect_uses(&mut regs);
    for r in regs {
        uses.push(Item::Reg(r));
    }
    if inst.uses_cc() {
        uses.push(Item::Cc);
    }
    let mut defs = Vec::new();
    if let Some(d) = inst.def() {
        defs.push(Item::Reg(d));
    }
    if inst.defs_cc() {
        defs.push(Item::Cc);
    }
    (uses, defs)
}

/// Extension: occurrence count of a register in an instruction's uses.
trait UsesCount {
    fn uses_count(&self, r: Reg) -> usize;
}

impl UsesCount for Inst {
    fn uses_count(&self, r: Reg) -> usize {
        let mut regs = Vec::new();
        self.collect_uses(&mut regs);
        regs.into_iter().filter(|&x| x == r).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_rtl::builder::FunctionBuilder;
    use vpo_rtl::{BinOp, Expr};

    fn t() -> Target {
        Target::default()
    }

    /// Max pseudo-temporary pressure (parameters excluded — they occupy
    /// registers from entry no matter the schedule).
    fn pressure(f: &Function) -> usize {
        let cfg = vpo_rtl::cfg::Cfg::build(f);
        let lv = vpo_rtl::liveness::Liveness::compute(f, &cfg);
        let mut max = 0;
        for bi in 0..f.blocks.len() {
            lv.for_each_inst_backward(f, bi, |_i, _inst, live| {
                let pseudos = live
                    .iter()
                    .filter(|&x| {
                        matches!(lv.universe[x], Item::Reg(r)
                            if r.class == RegClass::Pseudo && !f.params.contains(&r))
                    })
                    .count();
                max = max.max(pseudos);
            });
        }
        max
    }

    #[test]
    fn interleaving_reduces_pressure() {
        // Compute four independent sums; the naive order computes all four
        // lhs temps first, the scheduler interleaves.
        let mut b = FunctionBuilder::new("f");
        let xs: Vec<_> = (0..4).map(|_| b.param()).collect();
        let temps: Vec<_> = (0..4).map(|_| b.reg()).collect();
        let sums: Vec<_> = (0..4).map(|_| b.reg()).collect();
        for i in 0..4 {
            b.assign(temps[i], Expr::bin(BinOp::Add, Expr::Reg(xs[i]), Expr::Const(1)));
        }
        for i in 0..4 {
            b.assign(sums[i], Expr::bin(BinOp::Mul, Expr::Reg(temps[i]), Expr::Reg(temps[i])));
        }
        let acc = b.reg();
        b.assign(acc, Expr::bin(BinOp::Add, Expr::Reg(sums[0]), Expr::Reg(sums[1])));
        b.assign(acc, Expr::bin(BinOp::Add, Expr::Reg(acc), Expr::Reg(sums[2])));
        b.assign(acc, Expr::bin(BinOp::Add, Expr::Reg(acc), Expr::Reg(sums[3])));
        b.ret(Some(Expr::Reg(acc)));
        let mut f = b.finish();
        let before = pressure(&f);
        assert!(run(&mut f, &t()));
        let after = pressure(&f);
        assert!(after < before, "pressure {before} -> {after}");
    }

    #[test]
    fn idempotent() {
        let mut b = FunctionBuilder::new("f");
        let xs: Vec<_> = (0..3).map(|_| b.param()).collect();
        let temps: Vec<_> = (0..3).map(|_| b.reg()).collect();
        for i in 0..3 {
            b.assign(temps[i], Expr::bin(BinOp::Add, Expr::Reg(xs[i]), Expr::Const(1)));
        }
        let acc = b.reg();
        b.assign(acc, Expr::bin(BinOp::Add, Expr::Reg(temps[0]), Expr::Reg(temps[1])));
        b.assign(acc, Expr::bin(BinOp::Add, Expr::Reg(acc), Expr::Reg(temps[2])));
        b.ret(Some(Expr::Reg(acc)));
        let mut f = b.finish();
        run(&mut f, &t());
        let snapshot = f.clone();
        assert!(!run(&mut f, &t()), "second run must be dormant");
        assert_eq!(f, snapshot);
    }

    #[test]
    fn preserves_memory_and_control_order() {
        let mut b = FunctionBuilder::new("f");
        let p = b.param();
        let t0 = b.reg();
        let t1 = b.reg();
        b.assign(t0, Expr::load(vpo_rtl::Width::Word, Expr::Reg(p)));
        b.store(vpo_rtl::Width::Word, Expr::Reg(p), Expr::Reg(t0));
        b.assign(t1, Expr::load(vpo_rtl::Width::Word, Expr::Reg(p)));
        b.ret(Some(Expr::Reg(t1)));
        let mut f = b.finish();
        let snapshot = f.clone();
        run(&mut f, &t());
        // Memory operations must keep their relative order; the return
        // stays last. Since every instruction participates in that chain,
        // nothing may move at all.
        assert_eq!(f, snapshot);
    }
}
