//! Phase `j` — minimize loop jumps.
//!
//! "Removes a jump associated with a loop by duplicating a portion of the
//! loop." The implementation performs the classic *loop inversion*
//! (rotation): a top-test loop
//!
//! ```text
//! H:    IC = i ? n;  PC = IC>=0, EXIT;   (falls into body)
//!       ...body...
//! latch: PC = H;
//! EXIT: ...
//! ```
//!
//! becomes, by duplicating the header's test into the latch,
//!
//! ```text
//! H:    IC = i ? n;  PC = IC>=0, EXIT;
//!       ...body...
//! latch: IC = i ? n;  PC = IC<0, BODY;   (falls into EXIT)
//! EXIT: ...
//! ```
//!
//! The loop's back path now executes two instructions instead of three
//! (jump + compare + branch), at the cost of one extra static instruction —
//! exactly the code-size/speed trade the paper describes.

use vpo_rtl::cfg::Cfg;
use vpo_rtl::loops::find_loops;
use vpo_rtl::{Function, Inst};

use crate::target::Target;

/// Runs loop-jump minimization; returns whether anything changed.
pub fn run(f: &mut Function, _target: &Target) -> bool {
    let mut changed = false;
    loop {
        if !invert_once(f) {
            break;
        }
        changed = true;
    }
    changed
}

fn invert_once(f: &mut Function) -> bool {
    let cfg = Cfg::build(f);
    let loops = find_loops(&cfg);
    for l in &loops {
        let h = l.header;
        // Header must be exactly the test: [Compare, CondBranch(exit)].
        let (cmp, cond, exit_label) = match f.blocks[h].insts.as_slice() {
            [Inst::Compare { lhs, rhs }, Inst::CondBranch { cond, target }] => {
                ((lhs.clone(), rhs.clone()), *cond, *target)
            }
            _ => continue,
        };
        let Some(&exit_idx) = cfg.index_of.get(&exit_label) else { continue };
        if l.contains(exit_idx) {
            continue; // branch target must leave the loop
        }
        // Body start: the header's fall-through, inside the loop.
        if h + 1 >= f.blocks.len() || !l.contains(h + 1) {
            continue;
        }
        let body_label = f.blocks[h + 1].label;
        // Find a latch that ends with `PC = H` and whose positional
        // successor is the exit block (so the inverted branch can fall
        // through into the exit).
        let header_label = f.blocks[h].label;
        for &latch in &l.latches {
            let ends_with_jump = matches!(
                f.blocks[latch].insts.last(),
                Some(Inst::Jump { target }) if *target == header_label
            );
            if !ends_with_jump {
                continue;
            }
            if latch + 1 != exit_idx {
                continue;
            }
            let insts = &mut f.blocks[latch].insts;
            insts.pop();
            insts.push(Inst::Compare { lhs: cmp.0.clone(), rhs: cmp.1.clone() });
            insts.push(Inst::CondBranch { cond: cond.negate(), target: body_label });
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_rtl::builder::FunctionBuilder;
    use vpo_rtl::{BinOp, Cond, Expr};

    fn t() -> Target {
        Target::default()
    }

    /// A canonical while loop: `while (i < n) i += 1; return i;`
    fn while_loop() -> Function {
        let mut b = FunctionBuilder::new("w");
        let i = b.param();
        let n = b.param();
        let header = b.new_label();
        let body = b.new_label();
        let exit = b.new_label();
        b.start_block(header);
        b.compare(Expr::Reg(i), Expr::Reg(n));
        b.cond_branch(Cond::Ge, exit);
        b.start_block(body);
        b.assign(i, Expr::bin(BinOp::Add, Expr::Reg(i), Expr::Const(1)));
        b.jump(header);
        b.start_block(exit);
        b.ret(Some(Expr::Reg(i)));
        b.finish()
    }

    #[test]
    fn inverts_top_test_loop() {
        let mut f = while_loop();
        // Drop the builder's empty entry block the way normalization would.
        crate::normalize::normalize(&mut f);
        let before = f.inst_count();
        assert!(run(&mut f, &t()));
        // Net: -1 jump +2 test instructions.
        assert_eq!(f.inst_count(), before + 1);
        // The latch now ends with an inverted conditional branch to the body.
        let latch = f
            .blocks
            .iter()
            .find(|blk| matches!(blk.insts.last(), Some(Inst::CondBranch { cond: Cond::Lt, .. })))
            .expect("inverted latch");
        assert!(matches!(&latch.insts[latch.insts.len() - 2], Inst::Compare { .. }));
        assert!(!run(&mut f, &t()), "second application dormant");
    }

    #[test]
    fn dormant_on_rotated_loop() {
        // A bottom-test loop has no jump to remove.
        let mut b = FunctionBuilder::new("r");
        let i = b.param();
        let n = b.param();
        let body = b.new_label();
        b.start_block(body);
        b.assign(i, Expr::bin(BinOp::Add, Expr::Reg(i), Expr::Const(1)));
        b.compare(Expr::Reg(i), Expr::Reg(n));
        b.cond_branch(Cond::Lt, body);
        b.ret(Some(Expr::Reg(i)));
        let mut f = b.finish();
        crate::normalize::normalize(&mut f);
        assert!(!run(&mut f, &t()));
    }

    #[test]
    fn dormant_when_header_is_not_pure_test() {
        // Header contains body work: cannot safely duplicate.
        let mut b = FunctionBuilder::new("x");
        let i = b.param();
        let n = b.param();
        let header = b.new_label();
        let exit = b.new_label();
        b.start_block(header);
        b.assign(i, Expr::bin(BinOp::Add, Expr::Reg(i), Expr::Const(1)));
        b.compare(Expr::Reg(i), Expr::Reg(n));
        b.cond_branch(Cond::Ge, exit);
        b.jump(header);
        b.start_block(exit);
        b.ret(Some(Expr::Reg(i)));
        let mut f = b.finish();
        crate::normalize::normalize(&mut f);
        assert!(!run(&mut f, &t()));
    }
}
