//! Phase `u` — remove useless jumps.
//!
//! "Removes jumps and branches whose target is the following positional
//! block." Explicit control transfers are real instructions in this IR, so
//! removing one is a genuine code-size improvement.

use vpo_rtl::{Function, Inst};

use crate::target::Target;

/// Runs useless-jump removal; returns whether anything changed.
pub fn run(f: &mut Function, _target: &Target) -> bool {
    let mut changed = false;
    loop {
        let mut step = false;
        for i in 0..f.blocks.len().saturating_sub(1) {
            let next_label = f.blocks[i + 1].label;
            let insts = &mut f.blocks[i].insts;
            if let Some(last) = insts.last() {
                let useless = match last {
                    Inst::Jump { target } => *target == next_label,
                    Inst::CondBranch { target, .. } => *target == next_label,
                    _ => false,
                };
                if useless {
                    insts.pop();
                    step = true;
                }
            }
        }
        if !step {
            break;
        }
        changed = true;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_rtl::builder::FunctionBuilder;
    use vpo_rtl::{Cond, Expr};

    #[test]
    fn removes_jump_to_next_block() {
        let mut b = FunctionBuilder::new("f");
        let l = b.new_label();
        let r0 = b.reg();
        b.assign(r0, Expr::Const(1));
        b.jump(l);
        b.start_block(l);
        b.ret(Some(Expr::Reg(r0)));
        let mut f = b.finish();
        assert!(run(&mut f, &Target::default()));
        assert_eq!(f.inst_count(), 2);
        assert!(!run(&mut f, &Target::default()));
    }

    #[test]
    fn removes_branch_to_fallthrough() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let l = b.new_label();
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.cond_branch(Cond::Lt, l);
        b.start_block(l);
        b.ret(None);
        let mut f = b.finish();
        assert!(run(&mut f, &Target::default()));
        // The compare remains (dead-CC removal is phase h's business).
        assert_eq!(f.inst_count(), 2);
    }

    #[test]
    fn cascading_removal() {
        // Removing a trailing branch can expose another useless jump in the
        // same block; the phase iterates to its own fixpoint.
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let l = b.new_label();
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.inst(vpo_rtl::Inst::Jump { target: l });
        b.start_block(l);
        b.ret(None);
        let mut f = b.finish();
        // Manually craft [.., CondBranch l] after the jump is impossible
        // (jump is a barrier), so simply verify single removal + fixpoint.
        assert!(run(&mut f, &Target::default()));
        assert!(!run(&mut f, &Target::default()));
    }

    #[test]
    fn keeps_meaningful_jumps() {
        let mut b = FunctionBuilder::new("f");
        let far = b.new_label();
        let mid = b.new_label();
        b.jump(far);
        b.start_block(mid);
        b.ret(None);
        b.start_block(far);
        b.ret(None);
        let mut f = b.finish();
        assert!(!run(&mut f, &Target::default()));
        assert_eq!(f.inst_count(), 3);
    }
}
