//! Phase `b` — branch chaining.
//!
//! "Replaces a branch or jump target with the target of the last jump in
//! the jump chain." A *chain element* is a block consisting of exactly one
//! unconditional jump. Following the paper's remark, unreachable code left
//! behind by the retargeting is removed by this phase itself (which is why
//! phase `d` is almost never active).

use std::collections::HashSet;

use vpo_rtl::cfg::Cfg;
use vpo_rtl::{Function, Label};

use crate::target::Target;

/// Runs branch chaining; returns whether anything changed.
pub fn run(f: &mut Function, _target: &Target) -> bool {
    let mut changed = false;

    // Resolve each label through trivial-jump blocks, with a cycle guard.
    let resolve = |f: &Function, start: Label| -> Label {
        let mut seen = HashSet::new();
        let mut cur = start;
        loop {
            if !seen.insert(cur) {
                return start; // infinite jump cycle: leave untouched
            }
            let Some(bi) = f.block_index(cur) else { return cur };
            match f.blocks[bi].as_trivial_jump() {
                Some(next) if next != cur => cur = next,
                _ => return cur,
            }
        }
    };

    // Retarget every branch/jump through the chain.
    let nblocks = f.blocks.len();
    for bi in 0..nblocks {
        for ii in 0..f.blocks[bi].insts.len() {
            if let Some(t) = f.blocks[bi].insts[ii].target() {
                let final_t = resolve(f, t);
                if final_t != t {
                    f.blocks[bi].insts[ii].retarget(|_| final_t);
                    changed = true;
                }
            }
        }
    }

    // Remove code made unreachable by the retargeting (the chain blocks).
    if changed {
        let cfg = Cfg::build(f);
        let mut keep = cfg.reachable().into_iter();
        f.blocks.retain(|_| keep.next().unwrap_or(true));
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_rtl::builder::FunctionBuilder;
    use vpo_rtl::{Cond, Expr, Inst};

    #[test]
    fn follows_jump_chains_and_removes_dead_blocks() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let hop1 = b.new_label();
        let hop2 = b.new_label();
        let dest = b.new_label();
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.cond_branch(Cond::Lt, hop1);
        b.ret(None);
        b.start_block(hop1);
        b.jump(hop2);
        b.start_block(hop2);
        b.jump(dest);
        b.start_block(dest);
        b.ret(Some(Expr::Reg(x)));
        let mut f = b.finish();
        assert!(run(&mut f, &Target::default()));
        // Branch goes straight to dest; the two hop blocks are gone.
        let br = f
            .blocks
            .iter()
            .flat_map(|blk| blk.insts.iter())
            .find_map(|i| match i {
                Inst::CondBranch { target, .. } => Some(*target),
                _ => None,
            })
            .unwrap();
        assert_eq!(br, dest);
        assert_eq!(f.blocks.len(), 2);
        // Dormant on a second application.
        assert!(!run(&mut f, &Target::default()));
    }

    #[test]
    fn jump_cycle_is_left_alone() {
        let mut b = FunctionBuilder::new("f");
        let a = b.new_label();
        let c = b.new_label();
        b.jump(a);
        b.start_block(a);
        b.jump(c);
        b.start_block(c);
        b.jump(a);
        let mut f = b.finish();
        // a -> c -> a is a cycle; chaining must not loop forever. The entry
        // jump to `a` resolves into the cycle and is left as-is.
        let _ = run(&mut f, &Target::default());
    }

    #[test]
    fn dormant_on_straightline_code() {
        let mut b = FunctionBuilder::new("f");
        b.ret(None);
        let mut f = b.finish();
        assert!(!run(&mut f, &Target::default()));
    }
}
