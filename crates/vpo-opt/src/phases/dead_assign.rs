//! Phase `h` — dead assignment elimination.
//!
//! "Uses global analysis to remove assignments when the assigned value is
//! never used." Three kinds of dead code are removed, all driven by the
//! same liveness analysis:
//!
//! * register assignments whose destination is dead afterwards (the source
//!   may read memory — discarding a read is harmless);
//! * compares whose condition code is dead (e.g. after phase `u` removed
//!   the branch);
//! * stores to register-allocatable local slots whose value is never
//!   loaded again (sound because such slots provably do not escape).

use vpo_rtl::cfg::Cfg;
use vpo_rtl::liveness::{Item, Liveness};
use vpo_rtl::{Expr, Function, Inst};

use crate::target::Target;

/// Runs dead-assignment elimination; returns whether anything changed.
pub fn run(f: &mut Function, _target: &Target) -> bool {
    let mut changed = false;
    loop {
        // Removing one dead assignment can make the instructions feeding it
        // dead as well, so iterate the analysis to a fixpoint.
        let cfg = Cfg::build(f);
        let lv = Liveness::compute(f, &cfg);
        let mut dead: Vec<(usize, usize)> = Vec::new();
        for bi in 0..f.blocks.len() {
            lv.for_each_inst_backward(f, bi, |ii, inst, live_after| {
                let is_dead = match inst {
                    Inst::Assign { dst, .. } => lv
                        .index_of(Item::Reg(*dst))
                        .map(|d| !live_after.contains(d))
                        .unwrap_or(false),
                    Inst::Compare { .. } => {
                        lv.index_of(Item::Cc).map(|c| !live_after.contains(c)).unwrap_or(false)
                    }
                    Inst::Store { addr: Expr::LocalAddr(l), .. } => lv
                        .index_of(Item::Local(*l))
                        .map(|x| !live_after.contains(x))
                        .unwrap_or(false),
                    _ => false,
                };
                if is_dead {
                    dead.push((bi, ii));
                }
            });
        }
        if dead.is_empty() {
            break;
        }
        // Delete from the back of each block so indices stay valid.
        dead.sort_unstable_by(|a, b| b.cmp(a));
        for (bi, ii) in dead {
            f.blocks[bi].insts.remove(ii);
        }
        changed = true;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_rtl::builder::FunctionBuilder;
    use vpo_rtl::{BinOp, Cond, Width};

    #[test]
    fn removes_transitively_dead_chain() {
        let mut b = FunctionBuilder::new("f");
        let t0 = b.reg();
        let t1 = b.reg();
        let t2 = b.reg();
        b.assign(t0, Expr::Const(1));
        b.assign(t1, Expr::bin(BinOp::Add, Expr::Reg(t0), Expr::Const(2)));
        b.assign(t2, Expr::Const(9));
        b.ret(Some(Expr::Reg(t2)));
        let mut f = b.finish();
        assert!(run(&mut f, &Target::default()));
        // t1's chain is gone entirely (t1 dead, making t0 dead).
        assert_eq!(f.inst_count(), 2);
        assert!(!run(&mut f, &Target::default()));
    }

    #[test]
    fn keeps_live_values_and_side_effects() {
        let mut b = FunctionBuilder::new("f");
        let t0 = b.reg();
        b.assign(t0, Expr::Const(1));
        b.store(Width::Word, Expr::Reg(t0), Expr::Reg(t0)); // store: side effect
        b.ret(None);
        let mut f = b.finish();
        assert!(!run(&mut f, &Target::default()));
    }

    #[test]
    fn removes_dead_compare() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        b.compare(Expr::Reg(x), Expr::Const(0)); // CC never used
        b.ret(Some(Expr::Reg(x)));
        let mut f = b.finish();
        assert!(run(&mut f, &Target::default()));
        assert_eq!(f.inst_count(), 1);
    }

    #[test]
    fn keeps_compare_feeding_branch() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let l = b.new_label();
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.cond_branch(Cond::Lt, l);
        b.ret(Some(Expr::Const(0)));
        b.start_block(l);
        b.ret(Some(Expr::Const(1)));
        let mut f = b.finish();
        assert!(!run(&mut f, &Target::default()));
    }

    #[test]
    fn removes_store_to_never_loaded_local() {
        let mut b = FunctionBuilder::new("f");
        let v = b.local("v", 4);
        let t = b.reg();
        b.assign(t, Expr::Const(3));
        b.store(Width::Word, Expr::LocalAddr(v), Expr::Reg(t));
        b.ret(Some(Expr::Const(0)));
        let mut f = b.finish();
        assert!(run(&mut f, &Target::default()));
        // Store removed, then t became dead and was removed too.
        assert_eq!(f.inst_count(), 1);
    }

    #[test]
    fn keeps_store_to_loaded_local() {
        let mut b = FunctionBuilder::new("f");
        let v = b.local("v", 4);
        let t = b.reg();
        let u = b.reg();
        b.assign(t, Expr::Const(3));
        b.store(Width::Word, Expr::LocalAddr(v), Expr::Reg(t));
        b.assign(u, Expr::load(Width::Word, Expr::LocalAddr(v)));
        b.ret(Some(Expr::Reg(u)));
        let mut f = b.finish();
        assert!(!run(&mut f, &Target::default()));
    }
}
