//! The StrongARM-like target legality model.
//!
//! The paper generates code for the StrongARM SA-100. For the purposes of
//! phase-order exploration the only target property that matters is *which
//! RTLs constitute a single legal machine instruction*: instruction
//! selection (`s`) may only combine RTLs whose merged effect is still legal,
//! and naive code generation must emit only legal RTLs.
//!
//! The model captures the essentials of the ARM ISA:
//!
//! * a load/store architecture — memory is accessed only by whole `load`
//!   and `store` instructions with simple addressing modes
//!   (`[r]`, `[r, #imm]`, `[r, r]`, `[r, r LSL #k]`, and local-slot forms);
//! * data-processing instructions take a register and a *flexible second
//!   operand*: a register, an immediate expressible as an 8-bit value
//!   rotated by an even amount, or a register shifted by a small constant;
//! * `MUL` takes registers only (no multiply-by-immediate), which is what
//!   makes strength reduction (`q`) an enabling phase for instruction
//!   selection;
//! * 16 integer registers of which a few are reserved (sp/lr/pc), leaving
//!   [`Target::usable_regs`] available for assignment and allocation.

use vpo_rtl::{BinOp, Expr, Inst};

/// Target machine description.
#[derive(Clone, Debug)]
pub struct Target {
    /// Number of hard registers usable by register assignment and register
    /// allocation (the remaining registers model sp/lr/pc).
    pub usable_regs: u16,
    /// Maximum loop-body size (in instructions) that loop unrolling will
    /// still duplicate. The paper always unrolls with factor two because
    /// code size matters on embedded targets; the size bound plays the same
    /// role here.
    pub unroll_limit: usize,
    /// Whether register allocation (`k`) only considers variables whose
    /// every access is a *direct* load/store of the slot address. This is
    /// VPO's documented behaviour ("register allocation can only be
    /// performed after instruction selection so that candidate load and
    /// store instructions can contain the addresses of arguments or local
    /// scalars") and the source of much of the paper's phase-order
    /// sensitivity. Setting it to `false` enables the address-form-robust
    /// allocator — an ablation that collapses most of the code-size spread
    /// between phase orderings (see the `ablation` bench).
    pub regalloc_requires_direct: bool,
}

impl Default for Target {
    fn default() -> Self {
        // 16 ARM registers minus sp, lr, pc and the assembler temporary.
        Target { usable_regs: 12, unroll_limit: 24, regalloc_requires_direct: true }
    }
}

impl Target {
    /// Whether `c` is encodable as an ARM data-processing immediate: an
    /// 8-bit value rotated right by an even amount (or the bitwise
    /// complement of one, via `MVN`/`SUB` aliasing).
    pub fn legal_imm(&self, c: i64) -> bool {
        if !(i32::MIN as i64..=u32::MAX as i64).contains(&c) {
            return false;
        }
        let v = c as u32;
        arm_rotated_imm(v) || arm_rotated_imm(!v) || arm_rotated_imm(v.wrapping_neg())
    }

    /// Whether `c` is a legal load/store offset (±4095, like ARM).
    pub fn legal_offset(&self, c: i64) -> bool {
        (-4095..=4095).contains(&c)
    }

    /// Whether `e` is a legal *flexible second operand*: a register, a
    /// legal immediate, or a register shifted left/right by a constant in
    /// `0..32`.
    pub fn legal_operand2(&self, e: &Expr) -> bool {
        match e {
            Expr::Reg(_) => true,
            Expr::Const(c) => self.legal_imm(*c),
            Expr::Bin(BinOp::Shl | BinOp::AShr | BinOp::LShr, a, b) => {
                matches!(**a, Expr::Reg(_)) && matches!(&**b, Expr::Const(k) if (0..32).contains(k))
            }
            _ => false,
        }
    }

    /// Whether `a` is a legal memory address expression.
    pub fn legal_addr(&self, a: &Expr) -> bool {
        match a {
            Expr::Reg(_) | Expr::LocalAddr(_) => true,
            Expr::Bin(BinOp::Add, x, y) => match (&**x, &**y) {
                (Expr::Reg(_), Expr::Const(c)) => self.legal_offset(*c),
                (Expr::LocalAddr(_), Expr::Const(c)) => self.legal_offset(*c),
                (Expr::Reg(_), Expr::Reg(_)) => true,
                (Expr::LocalAddr(_), Expr::Reg(_)) => true,
                (Expr::Reg(_), Expr::Bin(BinOp::Shl, r, k)) => {
                    matches!(**r, Expr::Reg(_))
                        && matches!(&**k, Expr::Const(c) if (0..=3).contains(c))
                }
                _ => false,
            },
            Expr::Bin(BinOp::Sub, x, y) => {
                matches!(**x, Expr::Reg(_))
                    && matches!(&**y, Expr::Const(c) if self.legal_offset(*c))
            }
            _ => false,
        }
    }

    /// Whether `e` is legal as the right-hand side of a register
    /// assignment (one machine instruction).
    pub fn legal_rhs(&self, e: &Expr) -> bool {
        match e {
            Expr::Reg(_) => true,
            Expr::Const(c) => self.legal_imm(*c),
            Expr::Hi(_) => true,
            Expr::Lo(_) => false,       // only legal inside reg + LO[sym]
            Expr::LocalAddr(_) => true, // add rd, sp, #off
            Expr::Load(_, a) => self.legal_addr(a),
            Expr::Un(_, a) => matches!(**a, Expr::Reg(_)),
            Expr::Bin(op, a, b) => match op {
                BinOp::Mul => matches!(**a, Expr::Reg(_)) && matches!(**b, Expr::Reg(_)),
                // Division is a runtime-support operation (the SA-100 has no
                // divide instruction); we model the `__divsi3` call as a
                // single legal RTL over registers.
                BinOp::Div | BinOp::Rem => {
                    matches!(**a, Expr::Reg(_)) && matches!(**b, Expr::Reg(_))
                }
                BinOp::Shl | BinOp::AShr | BinOp::LShr => {
                    matches!(**a, Expr::Reg(_))
                        && match &**b {
                            Expr::Reg(_) => true,
                            Expr::Const(k) => (0..32).contains(k),
                            _ => false,
                        }
                }
                _ => {
                    // add/sub/and/or/xor: rd = rn op operand2, plus the
                    // reversed-operand forms (RSB / commutativity), plus the
                    // global-address idiom rd = rn + LO[sym].
                    match (&**a, &**b) {
                        (Expr::Reg(_), Expr::Lo(_)) if *op == BinOp::Add => true,
                        (Expr::Reg(_), _) => self.legal_operand2(b),
                        (Expr::Const(c), Expr::Reg(_)) => {
                            (*op == BinOp::Sub || op.is_commutative()) && self.legal_imm(*c)
                        }
                        // RSB covers reversed subtraction of a shifted
                        // operand: rd = (rn LSL #k) - rm.
                        (Expr::Bin(..), Expr::Reg(_))
                            if op.is_commutative() || *op == BinOp::Sub =>
                        {
                            self.legal_operand2(a)
                        }
                        _ => false,
                    }
                }
            },
        }
    }

    /// Whether `i` is a single legal machine instruction. This is the
    /// legality check applied by instruction selection before committing a
    /// combination, and an invariant of all code the front end emits.
    pub fn legal_inst(&self, i: &Inst) -> bool {
        match i {
            Inst::Assign { src, .. } => self.legal_rhs(src),
            Inst::Store { addr, src, .. } => {
                // ARM stores a register; no store-immediate exists.
                self.legal_addr(addr) && matches!(src, Expr::Reg(_))
            }
            Inst::Compare { lhs, rhs } => matches!(lhs, Expr::Reg(_)) && self.legal_operand2(rhs),
            Inst::CondBranch { .. } | Inst::Jump { .. } => true,
            Inst::Call { args, .. } => args.iter().all(|a| matches!(a, Expr::Reg(_))),
            Inst::Return { value } => match value {
                None => true,
                Some(Expr::Reg(_)) => true,
                Some(Expr::Const(c)) => self.legal_imm(*c),
                _ => false,
            },
        }
    }

    /// Checks that every instruction of `f` is legal; returns the first
    /// offender for diagnostics.
    pub fn check_function(&self, f: &vpo_rtl::Function) -> Result<(), String> {
        for (bi, ii, inst) in f.iter_insts() {
            if !self.legal_inst(inst) {
                return Err(format!(
                    "illegal instruction in {} block {} index {}: {}",
                    f.name, bi, ii, inst
                ));
            }
        }
        Ok(())
    }
}

/// ARM rotated-immediate test: an 8-bit value rotated right by an even
/// amount within a 32-bit word.
fn arm_rotated_imm(v: u32) -> bool {
    if v & !0xFF == 0 {
        return true;
    }
    for rot in (2..32).step_by(2) {
        if v.rotate_left(rot) & !0xFF == 0 {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_rtl::{Reg, Width};

    fn t() -> Target {
        Target::default()
    }

    fn r(i: u16) -> Expr {
        Expr::Reg(Reg::hard(i))
    }

    #[test]
    fn immediates() {
        let t = t();
        assert!(t.legal_imm(0));
        assert!(t.legal_imm(255));
        assert!(t.legal_imm(256)); // 1 rotated
        assert!(t.legal_imm(4000)); // 0xFA << 4
        assert!(t.legal_imm(-1)); // MVN 0
        assert!(t.legal_imm(-255));
        assert!(t.legal_imm(0xFF00_0000));
        assert!(!t.legal_imm(4097)); // 0x1001
        assert!(!t.legal_imm(65535)); // 0xFFFF needs MOVW
    }

    #[test]
    fn paper_examples_are_legal() {
        let t = t();
        // r[3]=r[4]+1;
        assert!(t.legal_rhs(&Expr::bin(BinOp::Add, r(4), Expr::Const(1))));
        // r[9]=4000+r[12];
        assert!(t.legal_rhs(&Expr::bin(BinOp::Add, Expr::Const(4000), r(12))));
        // r[8]=M[r[1]];
        assert!(t.legal_rhs(&Expr::load(Width::Word, r(1))));
        // r[12]=HI[a]; r[12]=r[12]+LO[a];
        assert!(t.legal_rhs(&Expr::Hi(vpo_rtl::SymId(0))));
        assert!(t.legal_rhs(&Expr::bin(BinOp::Add, r(12), Expr::Lo(vpo_rtl::SymId(0)))));
    }

    #[test]
    fn load_store_architecture() {
        let t = t();
        // Loads cannot be nested inside arithmetic.
        assert!(!t.legal_rhs(&Expr::bin(BinOp::Add, r(1), Expr::load(Width::Word, r(2)))));
        // Stores take registers only.
        let bad = Inst::Store { width: Width::Word, addr: r(1), src: Expr::Const(0) };
        assert!(!t.legal_inst(&bad));
        let good = Inst::Store { width: Width::Word, addr: r(1), src: r(2) };
        assert!(t.legal_inst(&good));
    }

    #[test]
    fn shifted_operand_and_scaled_addressing() {
        let t = t();
        // add rd, rn, rm LSL #2
        assert!(t.legal_rhs(&Expr::bin(
            BinOp::Add,
            r(1),
            Expr::bin(BinOp::Shl, r(2), Expr::Const(2)),
        )));
        // ldr rd, [rn, rm LSL #2]
        assert!(t.legal_addr(&Expr::bin(
            BinOp::Add,
            r(1),
            Expr::bin(BinOp::Shl, r(2), Expr::Const(2)),
        )));
        // ...but not LSL #5 in an address.
        assert!(!t.legal_addr(&Expr::bin(
            BinOp::Add,
            r(1),
            Expr::bin(BinOp::Shl, r(2), Expr::Const(5)),
        )));
    }

    #[test]
    fn multiply_needs_registers() {
        let t = t();
        assert!(t.legal_rhs(&Expr::bin(BinOp::Mul, r(1), r(2))));
        assert!(!t.legal_rhs(&Expr::bin(BinOp::Mul, r(1), Expr::Const(4))));
    }

    #[test]
    fn local_slot_addressing() {
        let t = t();
        use vpo_rtl::LocalId;
        assert!(t.legal_addr(&Expr::LocalAddr(LocalId(0))));
        assert!(t.legal_addr(&Expr::bin(BinOp::Add, Expr::LocalAddr(LocalId(0)), Expr::Const(8))));
        assert!(t.legal_rhs(&Expr::LocalAddr(LocalId(0))));
    }

    #[test]
    fn offsets() {
        let t = t();
        assert!(t.legal_addr(&Expr::bin(BinOp::Add, r(0), Expr::Const(4095))));
        assert!(!t.legal_addr(&Expr::bin(BinOp::Add, r(0), Expr::Const(4096))));
        assert!(t.legal_addr(&Expr::bin(BinOp::Sub, r(0), Expr::Const(4))));
    }
}
