//! ARM-flavoured assembly emission from finalized RTL.
//!
//! Every legal RTL corresponds to one machine instruction of the
//! StrongARM-like target (that is precisely what the
//! [`Target`](crate::Target) legality model enforces), so emission is a
//! 1:1 pretty-printing pass. The output uses GNU-style syntax with a few
//! assembler pseudo-ops (`=HI(sym)`/`=LO(sym)` address pieces, `bl` with
//! an argument comment), since the simulator — not an assembler — is this
//! reproduction's execution substrate.
//!
//! Run [`finalize::fix_entry_exit`](crate::finalize::fix_entry_exit)
//! first; emission rejects functions that still contain symbolic local
//! addresses.

use std::fmt::Write as _;

use vpo_rtl::{BinOp, Cond, Expr, Function, Inst, Label, Program, UnOp, Width};

/// Emission failure: the function is not in emittable (finalized, legal)
/// form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EmitError {
    /// Human-readable description of the offending RTL.
    pub message: String,
}

impl std::fmt::Display for EmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot emit: {}", self.message)
    }
}

impl std::error::Error for EmitError {}

fn err(msg: impl Into<String>) -> EmitError {
    EmitError { message: msg.into() }
}

fn reg(r: vpo_rtl::Reg) -> Result<String, EmitError> {
    if r.is_hard() {
        Ok(format!("r{}", r.index))
    } else {
        Err(err(format!("pseudo register {r} survives; run a register-requiring phase first")))
    }
}

fn label(name: &str, l: Label) -> String {
    format!(".L{}_{}", name, l.0)
}

/// The flexible second operand of a data-processing instruction.
fn operand2(e: &Expr) -> Result<String, EmitError> {
    match e {
        Expr::Reg(r) => reg(*r),
        Expr::Const(c) => Ok(format!("#{c}")),
        Expr::Bin(op @ (BinOp::Shl | BinOp::AShr | BinOp::LShr), a, b) => {
            let (Expr::Reg(r), Expr::Const(k)) = (&**a, &**b) else {
                return Err(err(format!("unsupported shifted operand {e}")));
            };
            let mn = match op {
                BinOp::Shl => "lsl",
                BinOp::AShr => "asr",
                _ => "lsr",
            };
            Ok(format!("{}, {mn} #{k}", reg(*r)?))
        }
        other => Err(err(format!("unsupported operand {other}"))),
    }
}

fn address(e: &Expr) -> Result<String, EmitError> {
    match e {
        Expr::Reg(r) => Ok(format!("[{}]", reg(*r)?)),
        Expr::Bin(BinOp::Add, a, b) => match (&**a, &**b) {
            (Expr::Reg(r), Expr::Const(c)) => Ok(format!("[{}, #{c}]", reg(*r)?)),
            (Expr::Reg(r), Expr::Reg(i)) => Ok(format!("[{}, {}]", reg(*r)?, reg(*i)?)),
            (Expr::Reg(r), Expr::Bin(BinOp::Shl, i, k)) => {
                let (Expr::Reg(i), Expr::Const(k)) = (&**i, &**k) else {
                    return Err(err(format!("unsupported address {e}")));
                };
                Ok(format!("[{}, {}, lsl #{k}]", reg(*r)?, reg(*i)?))
            }
            _ => Err(err(format!("unsupported address {e}"))),
        },
        Expr::Bin(BinOp::Sub, a, b) => match (&**a, &**b) {
            (Expr::Reg(r), Expr::Const(c)) => Ok(format!("[{}, #-{c}]", reg(*r)?)),
            _ => Err(err(format!("unsupported address {e}"))),
        },
        Expr::LocalAddr(_) => Err(err("symbolic local address; run fix_entry_exit first")),
        other => Err(err(format!("unsupported address {other}"))),
    }
}

fn data_op(op: BinOp) -> Option<&'static str> {
    Some(match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::And => "and",
        BinOp::Or => "orr",
        BinOp::Xor => "eor",
        _ => return None,
    })
}

fn emit_assign(
    out: &mut String,
    dst: vpo_rtl::Reg,
    src: &Expr,
    prog: &Program,
) -> Result<(), EmitError> {
    let d = reg(dst)?;
    match src {
        Expr::Reg(r) => writeln!(out, "\tmov\t{d}, {}", reg(*r)?).unwrap(),
        Expr::Const(c) => writeln!(out, "\tmov\t{d}, #{c}").unwrap(),
        Expr::Hi(s) => {
            let name = &prog.globals[s.0 as usize].name;
            writeln!(out, "\tmov\t{d}, #:hi:{name}").unwrap()
        }
        Expr::LocalAddr(_) => return Err(err("symbolic local address; run fix_entry_exit first")),
        Expr::Load(w, a) => {
            let mn = if *w == Width::Byte { "ldrb" } else { "ldr" };
            writeln!(out, "\t{mn}\t{d}, {}", address(a)?).unwrap()
        }
        Expr::Un(op, a) => {
            let a = match &**a {
                Expr::Reg(r) => reg(*r)?,
                other => return Err(err(format!("unsupported unary operand {other}"))),
            };
            match op {
                UnOp::Neg => writeln!(out, "\trsb\t{d}, {a}, #0").unwrap(),
                UnOp::Not => writeln!(out, "\tmvn\t{d}, {a}").unwrap(),
            }
        }
        Expr::Bin(BinOp::Add, a, b) if matches!(&**b, Expr::Lo(_)) => {
            let Expr::Lo(s) = &**b else { unreachable!() };
            let name = &prog.globals[s.0 as usize].name;
            writeln!(out, "\tadd\t{d}, {}, #:lo:{name}", operand2(a)?).unwrap()
        }
        Expr::Bin(op, a, b) => match (op, &**a, &**b) {
            (BinOp::Mul, Expr::Reg(x), Expr::Reg(y)) => {
                writeln!(out, "\tmul\t{d}, {}, {}", reg(*x)?, reg(*y)?).unwrap()
            }
            (BinOp::Div, Expr::Reg(x), Expr::Reg(y)) => {
                // Runtime-support operation on the SA-100.
                writeln!(out, "\tbl\t__divsi3\t@ {d} = {} / {}", reg(*x)?, reg(*y)?).unwrap()
            }
            (BinOp::Rem, Expr::Reg(x), Expr::Reg(y)) => {
                writeln!(out, "\tbl\t__modsi3\t@ {d} = {} % {}", reg(*x)?, reg(*y)?).unwrap()
            }
            (BinOp::Shl | BinOp::AShr | BinOp::LShr, Expr::Reg(x), rhs) => {
                let mn = match op {
                    BinOp::Shl => "lsl",
                    BinOp::AShr => "asr",
                    _ => "lsr",
                };
                let rhs = match rhs {
                    Expr::Reg(r) => reg(*r)?,
                    Expr::Const(k) => format!("#{k}"),
                    other => return Err(err(format!("unsupported shift amount {other}"))),
                };
                writeln!(out, "\t{mn}\t{d}, {}, {rhs}", reg(*x)?).unwrap()
            }
            (_, Expr::Reg(x), _) => {
                let mn = data_op(*op).ok_or_else(|| err(format!("unsupported operation {op}")))?;
                writeln!(out, "\t{mn}\t{d}, {}, {}", reg(*x)?, operand2(b)?).unwrap()
            }
            (BinOp::Sub, Expr::Const(c), Expr::Reg(y)) => {
                writeln!(out, "\trsb\t{d}, {}, #{c}", reg(*y)?).unwrap()
            }
            (_, Expr::Const(c), Expr::Reg(y)) if op.is_commutative() => {
                let mn = data_op(*op).ok_or_else(|| err(format!("unsupported operation {op}")))?;
                writeln!(out, "\t{mn}\t{d}, {}, #{c}", reg(*y)?).unwrap()
            }
            (BinOp::Sub, Expr::Bin(..), Expr::Reg(y)) => {
                writeln!(out, "\trsb\t{d}, {}, {}", reg(*y)?, operand2(a)?).unwrap()
            }
            (_, Expr::Bin(..), Expr::Reg(y)) if op.is_commutative() => {
                let mn = data_op(*op).ok_or_else(|| err(format!("unsupported operation {op}")))?;
                writeln!(out, "\t{mn}\t{d}, {}, {}", reg(*y)?, operand2(a)?).unwrap()
            }
            _ => return Err(err(format!("unsupported binary form {src}"))),
        },
        Expr::Lo(_) => return Err(err("bare LO[] operand")),
    }
    Ok(())
}

fn cond_suffix(c: Cond) -> &'static str {
    match c {
        Cond::Eq => "eq",
        Cond::Ne => "ne",
        Cond::Lt => "lt",
        Cond::Le => "le",
        Cond::Gt => "gt",
        Cond::Ge => "ge",
    }
}

/// Emits one function as assembly text.
///
/// # Errors
///
/// Returns [`EmitError`] if the function contains pseudo registers,
/// symbolic local addresses (run
/// [`fix_entry_exit`](crate::finalize::fix_entry_exit) first), or RTL
/// shapes outside the target model.
pub fn emit_function(f: &Function, prog: &Program) -> Result<String, EmitError> {
    let mut out = String::new();
    writeln!(out, "\t.text\n\t.global\t{}\n{}:", f.name, f.name).unwrap();
    for b in &f.blocks {
        writeln!(out, "{}:", label(&f.name, b.label)).unwrap();
        for inst in &b.insts {
            match inst {
                Inst::Assign { dst, src } => emit_assign(&mut out, *dst, src, prog)?,
                Inst::Store { width, addr, src } => {
                    let Expr::Reg(r) = src else {
                        return Err(err("store source must be a register"));
                    };
                    let mn = if *width == Width::Byte { "strb" } else { "str" };
                    writeln!(out, "\t{mn}\t{}, {}", reg(*r)?, address(addr)?).unwrap();
                }
                Inst::Compare { lhs, rhs } => {
                    let Expr::Reg(l) = lhs else {
                        return Err(err("compare lhs must be a register"));
                    };
                    writeln!(out, "\tcmp\t{}, {}", reg(*l)?, operand2(rhs)?).unwrap();
                }
                Inst::CondBranch { cond, target } => {
                    writeln!(out, "\tb{}\t{}", cond_suffix(*cond), label(&f.name, *target))
                        .unwrap();
                }
                Inst::Jump { target } => {
                    writeln!(out, "\tb\t{}", label(&f.name, *target)).unwrap();
                }
                Inst::Call { callee, args, dst } => {
                    let mut note = String::new();
                    for (i, a) in args.iter().enumerate() {
                        let Expr::Reg(r) = a else {
                            return Err(err("call argument must be a register"));
                        };
                        if i > 0 {
                            note.push_str(", ");
                        }
                        note.push_str(&reg(*r)?);
                    }
                    write!(out, "\tbl\t{callee}").unwrap();
                    if !note.is_empty() {
                        write!(out, "\t@ args: {note}").unwrap();
                    }
                    if let Some(d) = dst {
                        write!(out, " -> {}", reg(*d)?).unwrap();
                    }
                    out.push('\n');
                }
                Inst::Return { value } => {
                    match value {
                        Some(Expr::Reg(r)) => {
                            let r = reg(*r)?;
                            if r != "r0" {
                                writeln!(out, "\tmov\tr0, {r}").unwrap();
                            }
                        }
                        Some(Expr::Const(c)) => writeln!(out, "\tmov\tr0, #{c}").unwrap(),
                        Some(other) => {
                            return Err(err(format!("unsupported return value {other}")))
                        }
                        None => {}
                    }
                    writeln!(out, "\tbx\tlr").unwrap();
                }
            }
        }
    }
    Ok(out)
}

/// Emits the whole program: globals as `.data`/`.bss`, then every
/// function (finalizing each first).
///
/// # Errors
///
/// Propagates the first per-function [`EmitError`].
pub fn emit_program(prog: &Program, target: &crate::Target) -> Result<String, EmitError> {
    let mut out = String::new();
    for g in &prog.globals {
        if g.init.is_empty() && g.init_bytes.is_empty() {
            writeln!(out, "\t.bss\n\t.align\t2\n{}:\n\t.space\t{}", g.name, g.size.max(1)).unwrap();
        } else {
            writeln!(out, "\t.data\n\t.align\t2\n{}:", g.name).unwrap();
            if !g.init_bytes.is_empty() {
                let bytes: Vec<String> = g.init_bytes.iter().map(|b| b.to_string()).collect();
                writeln!(out, "\t.byte\t{}", bytes.join(", ")).unwrap();
            } else {
                for w in &g.init {
                    writeln!(out, "\t.word\t{w}").unwrap();
                }
            }
        }
    }
    for f in &prog.functions {
        let finalized = crate::finalize::fix_entry_exit(f, target);
        out.push('\n');
        out.push_str(&emit_function(&finalized, prog)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::batch_compile;
    use crate::Target;

    fn emit_batch(src: &str) -> String {
        let mut p = vpo_frontend::compile(src).unwrap();
        let target = Target::default();
        for f in &mut p.functions {
            batch_compile(f, &target);
        }
        emit_program(&p, &target).unwrap()
    }

    #[test]
    fn emits_straightline_function() {
        let asm = emit_batch("int triple(int x) { return x * 3; }");
        assert!(asm.contains(".global\ttriple"), "{asm}");
        assert!(asm.contains("bx\tlr"), "{asm}");
        // Strength-reduced multiply: x*3 = (x<<2) - x via rsb.
        assert!(asm.contains("lsl #") || asm.contains("mul"), "{asm}");
    }

    #[test]
    fn emits_loops_with_branches() {
        let asm = emit_batch(
            "int sum(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i; return s; }",
        );
        assert!(asm.contains("cmp\t"), "{asm}");
        assert!(asm.contains("blt\t") || asm.contains("bge\t"), "{asm}");
    }

    #[test]
    fn emits_globals_and_memory_accesses() {
        let asm = emit_batch(
            r#"
            int table[3] = { 5, 6, 7 };
            char text[] = "ab";
            int get(int i) { return table[i]; }
        "#,
        );
        assert!(asm.contains(".word\t5"), "{asm}");
        assert!(asm.contains(".byte\t97, 98, 0"), "{asm}");
        assert!(asm.contains("#:hi:table"), "{asm}");
        assert!(asm.contains("ldr\t"), "{asm}");
    }

    #[test]
    fn every_batch_compiled_suite_function_emits() {
        let target = Target::default();
        for b in mibench::all() {
            let mut p = b.compile().unwrap();
            for f in &mut p.functions {
                batch_compile(f, &target);
            }
            emit_program(&p, &target).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn rejects_unfinalized_functions() {
        let p = vpo_frontend::compile("int f(int x) { int y = x; return y; }").unwrap();
        // Naive code still holds pseudo registers and local addresses.
        assert!(emit_function(&p.functions[0], &p).is_err());
    }
}
