//! Compulsory basic-block normalization.
//!
//! The paper removes *merge basic blocks* and *eliminate empty blocks* from
//! the candidate phase list "since these phases only change the internal
//! control-flow representation as seen by the compiler and do not directly
//! affect the final generated code. These phases are now implicitly
//! performed after any transformation that has the potential of enabling
//! them."
//!
//! Accordingly, [`normalize`] is run after every *active* phase
//! application. It never adds or removes real instructions (explicit jumps
//! are real code and are the business of phases `u`, `i`, `r`): it only
//! deletes empty blocks and concatenates a block with its fall-through
//! successor when that successor's label is not a branch target.

use std::collections::HashMap;

use vpo_rtl::{Function, Label};

/// Runs empty-block elimination and block merging to a fixpoint.
/// Returns `true` if the representation changed (useful for tests; the
/// result is *not* an optimization-phase activity signal).
pub fn normalize(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let step = eliminate_empty_blocks(f) | merge_blocks(f);
        if !step {
            break;
        }
        changed = true;
    }
    changed
}

/// Counts how many branch or jump instructions reference each label.
pub fn label_refs(f: &Function) -> HashMap<Label, usize> {
    let mut refs: HashMap<Label, usize> = HashMap::new();
    for b in &f.blocks {
        for i in &b.insts {
            if let Some(t) = i.target() {
                *refs.entry(t).or_insert(0) += 1;
            }
        }
    }
    refs
}

/// Removes blocks with no instructions, redirecting references to their
/// fall-through successor. Returns whether anything changed.
fn eliminate_empty_blocks(f: &mut Function) -> bool {
    let mut changed = false;
    // Find an empty block that is not the last (the last block must end the
    // function; an empty trailing block can only be unreferenced garbage).
    loop {
        let pos = f.blocks.iter().position(|b| b.insts.is_empty());
        let Some(i) = pos else { break };
        if i + 1 < f.blocks.len() {
            let dead = f.blocks[i].label;
            let succ = f.blocks[i + 1].label;
            f.blocks.remove(i);
            for b in &mut f.blocks {
                for inst in &mut b.insts {
                    inst.retarget(|t| if t == dead { succ } else { t });
                }
            }
            changed = true;
        } else {
            // Trailing empty block: remove only if unreferenced.
            let dead = f.blocks[i].label;
            if label_refs(f).get(&dead).copied().unwrap_or(0) == 0 && f.blocks.len() > 1 {
                f.blocks.remove(i);
                changed = true;
            } else {
                break;
            }
        }
    }
    changed
}

/// Concatenates `B` and its positional successor `C` when `B` falls through
/// into `C` and no instruction anywhere references `C`'s label. Returns
/// whether anything changed.
fn merge_blocks(f: &mut Function) -> bool {
    let mut changed = false;
    let mut i = 0;
    while i + 1 < f.blocks.len() {
        let refs = label_refs(f);
        let c_label = f.blocks[i + 1].label;
        // B must have a *single* successor (pure fall-through): a trailing
        // conditional branch marks a real block boundary and merging across
        // it would create extended blocks.
        let pure_fallthrough = match f.blocks[i].insts.last() {
            None => true,
            Some(last) => !last.is_control(),
        };
        if pure_fallthrough && refs.get(&c_label).copied().unwrap_or(0) == 0 {
            let mut tail = f.blocks.remove(i + 1);
            f.blocks[i].insts.append(&mut tail.insts);
            changed = true;
            // Re-check the same index: the merged block may fall into the
            // next one as well.
        } else {
            i += 1;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_rtl::builder::FunctionBuilder;
    use vpo_rtl::{Cond, Expr, Inst};

    #[test]
    fn removes_empty_block_and_retargets() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let empty = b.new_label();
        let tail = b.new_label();
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.cond_branch(Cond::Lt, empty);
        b.jump(tail);
        b.start_block(empty); // stays empty, falls through to tail
        b.start_block(tail);
        b.ret(None);
        let mut f = b.finish();
        assert!(normalize(&mut f));
        // The empty block is gone; the branch now targets `tail` directly,
        // and since nothing else separates the blocks they merge.
        assert!(f.blocks.iter().all(|blk| !blk.insts.is_empty()));
        let retargeted = f
            .blocks
            .iter()
            .flat_map(|blk| blk.insts.iter())
            .any(|i| matches!(i, Inst::CondBranch { target, .. } if *target == tail));
        assert!(retargeted);
    }

    #[test]
    fn merges_fallthrough_chain() {
        let mut b = FunctionBuilder::new("f");
        let l1 = b.new_label();
        let l2 = b.new_label();
        let r0 = b.reg();
        b.assign(r0, Expr::Const(1));
        b.start_block(l1);
        b.assign(r0, Expr::Const(2));
        b.start_block(l2);
        b.ret(Some(Expr::Reg(r0)));
        let mut f = b.finish();
        assert_eq!(f.blocks.len(), 3);
        assert!(normalize(&mut f));
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.inst_count(), 3);
    }

    #[test]
    fn does_not_merge_branch_targets() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let loop_l = b.new_label();
        b.start_block(loop_l);
        b.assign(x, Expr::bin(vpo_rtl::BinOp::Sub, Expr::Reg(x), Expr::Const(1)));
        b.compare(Expr::Reg(x), Expr::Const(0));
        b.cond_branch(Cond::Gt, loop_l);
        b.ret(None);
        let mut f = b.finish();
        // Entry block is empty -> removed; loop body must remain intact and
        // separate (its label is referenced).
        normalize(&mut f);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].label, loop_l);
        assert_eq!(f.inst_count(), 4);
    }

    #[test]
    fn idempotent_when_clean() {
        let mut b = FunctionBuilder::new("f");
        b.ret(None);
        let mut f = b.finish();
        assert!(!normalize(&mut f));
    }
}
