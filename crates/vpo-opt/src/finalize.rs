//! The compulsory *fix entry exit* phase.
//!
//! "After applying the last code-improving phase in a sequence, VPO
//! performs another compulsory phase that inserts instructions at the
//! entry and exit of the function to manage the activation record on the
//! runtime stack." (Section 3.)
//!
//! This phase runs at **emission time**, after the search is over — it is
//! not part of the explored phase set. It lowers the symbolic
//! [`LocalAddr`](vpo_rtl::Expr::LocalAddr) leaves to stack-pointer
//! relative addresses and inserts the frame push/pop:
//!
//! ```text
//! entry:   r[13] = r[13] - frame_size;
//! ...      &locN ==> (r[13] + offset_N)
//! exits:   r[13] = r[13] + frame_size;   (before every return)
//! ```
//!
//! The stack pointer is the target's register 13, outside the usable
//! allocation range, exactly like ARM's `sp`.

use vpo_rtl::{BinOp, Expr, Function, Inst, Reg};

use crate::target::Target;

/// The stack-pointer register (ARM's r13).
pub const SP: Reg = Reg { class: vpo_rtl::RegClass::Hard, index: 13 };

/// Lowers local slots to stack-pointer addressing and inserts the frame
/// management instructions. Returns the finalized function (the input is
/// the search-space representation and is left untouched).
///
/// Functions with no locals come back unchanged except for the guarantee
/// that no [`Expr::LocalAddr`] remains.
pub fn fix_entry_exit(f: &Function, _target: &Target) -> Function {
    let mut g = f.clone();
    // Only slots the optimized code still references occupy frame space
    // (register allocation and dead-assignment elimination typically
    // remove every access to promoted scalars).
    let mut referenced = vec![false; g.locals.len()];
    for (_, _, inst) in g.iter_insts() {
        inst.visit_exprs(&mut |e| {
            e.visit(&mut |sub| {
                if let Expr::LocalAddr(id) = sub {
                    referenced[id.0 as usize] = true;
                }
            });
        });
    }
    if !referenced.iter().any(|&r| r) {
        return g;
    }
    // Word-aligned slot offsets from the new stack pointer.
    let mut offsets = Vec::with_capacity(g.locals.len());
    let mut frame: i64 = 0;
    for (slot, &used) in g.locals.iter().zip(&referenced) {
        offsets.push(frame);
        if used {
            frame += ((slot.size + 3) & !3) as i64;
        }
    }
    // Lower LocalAddr leaves.
    for b in &mut g.blocks {
        for inst in &mut b.insts {
            inst.visit_exprs_mut(&mut |e| {
                e.visit_mut(&mut |sub| {
                    if let Expr::LocalAddr(id) = sub {
                        let off = offsets[id.0 as usize];
                        *sub = if off == 0 {
                            Expr::Reg(SP)
                        } else {
                            Expr::bin(BinOp::Add, Expr::Reg(SP), Expr::Const(off))
                        };
                    }
                });
            });
        }
    }
    // Frame push at entry.
    g.blocks[0].insts.insert(
        0,
        Inst::Assign { dst: SP, src: Expr::bin(BinOp::Sub, Expr::Reg(SP), Expr::Const(frame)) },
    );
    // Frame pop before every return.
    for b in &mut g.blocks {
        let mut i = 0;
        while i < b.insts.len() {
            if matches!(b.insts[i], Inst::Return { .. }) {
                b.insts.insert(
                    i,
                    Inst::Assign {
                        dst: SP,
                        src: Expr::bin(BinOp::Add, Expr::Reg(SP), Expr::Const(frame)),
                    },
                );
                i += 1;
            }
            i += 1;
        }
    }
    g
}

/// Total activation-record size in bytes (word-aligned slots).
pub fn frame_size(f: &Function) -> i64 {
    f.locals.iter().map(|s| ((s.size + 3) & !3) as i64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn has_local_addr(f: &Function) -> bool {
        let mut found = false;
        for (_, _, inst) in f.iter_insts() {
            inst.visit_exprs(&mut |e| {
                e.visit(&mut |sub| {
                    if matches!(sub, Expr::LocalAddr(_)) {
                        found = true;
                    }
                });
            });
        }
        found
    }

    #[test]
    fn lowers_all_local_addresses() {
        let p = vpo_frontend::compile(
            "int f(int x) { int a[3]; a[0] = x; a[1] = x + 1; a[2] = a[0] + a[1]; return a[2]; }",
        )
        .unwrap();
        let f = &p.functions[0];
        assert!(has_local_addr(f));
        let g = fix_entry_exit(f, &Target::default());
        assert!(!has_local_addr(&g));
        // Entry push + one pop per return.
        assert!(matches!(
            &g.blocks[0].insts[0],
            Inst::Assign { dst, src: Expr::Bin(BinOp::Sub, a, _) }
                if *dst == SP && matches!(&**a, Expr::Reg(r) if *r == SP)
        ));
        assert_eq!(g.inst_count(), f.inst_count() + 2);
    }

    #[test]
    fn optimized_away_slots_need_no_frame() {
        // After batch compilation, the parameter's home slot is promoted to
        // a register and never referenced — no frame instructions appear.
        let p = vpo_frontend::compile("int f(int x) { return x + 1; }").unwrap();
        let mut f = p.functions[0].clone();
        let target = Target::default();
        crate::batch::batch_compile(&mut f, &target);
        let g = fix_entry_exit(&f, &target);
        target.check_function(&g).unwrap();
        assert!(!has_local_addr(&g));
        assert_eq!(
            g.inst_count(),
            f.inst_count(),
            "dead slots must not cost frame instructions:
{g}"
        );
    }

    #[test]
    fn frame_sizes_are_word_aligned() {
        let p =
            vpo_frontend::compile("int f() { char b[5]; int w; b[0] = 1; w = b[0]; return w; }")
                .unwrap();
        // 5 bytes round to 8, plus 4 for the scalar.
        assert_eq!(frame_size(&p.functions[0]), 12);
    }

    #[test]
    fn finalized_code_is_legal_machine_code() {
        let target = Target::default();
        for b in [
            "int f(int x) { int y = x * 3; return y + 2; }",
            "int g(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i; return s; }",
        ] {
            let p = vpo_frontend::compile(b).unwrap();
            let g = fix_entry_exit(&p.functions[0], &target);
            target.check_function(&g).unwrap();
        }
    }
}
