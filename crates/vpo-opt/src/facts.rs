//! Cheap per-instance fact summaries backing the enumerator's sound
//! dormant-phase prefilters.
//!
//! [`Facts::of`] distills a function instance into a handful of booleans
//! and counts in one pass over the instructions plus one CFG/loop
//! analysis. [`PhaseId::can_be_active`](crate::PhaseId::can_be_active)
//! consults the summary to rule a phase *provably dormant* without cloning
//! the function or running the phase at all.
//!
//! # Soundness
//!
//! Every rule must be conservative: `can_be_active(phase, &facts) == false`
//! is a *proof* that [`attempt`](crate::attempt) on this exact instance
//! would report the phase dormant. A false `true` merely costs a wasted
//! attempt; a false `false` would silently change the enumerated space, so
//! every rule is justified against the phase implementation it filters
//! (and covered by the cross-engine equivalence and prefilter-soundness
//! tests in the `phase-order` crate).
//!
//! One subtlety: phases with [`requires_registers`] trigger implicit
//! register *assignment* before running, and assignment may **spill**,
//! which introduces new scalar locals and new load/store instructions. The
//! facts are computed on the pre-assignment parent, so any fact consumed
//! by the rule of a register-requiring phase must be *invariant under
//! assignment and spilling*. Control flow qualifies (assignment inserts no
//! control transfers and no blocks, so jumps, conditional branches, loops
//! and reachability are untouched); multiply operators qualify (spill code
//! is loads and stores; coloring only renames registers). The presence of
//! scalar locals does **not** qualify — spilling creates them — which is
//! why the register-allocation rule below only fires once `regs_assigned`
//! is already true.
//!
//! [`requires_registers`]: crate::PhaseId::requires_registers

use vpo_rtl::cfg::Cfg;
use vpo_rtl::expr::BinOp;
use vpo_rtl::{loops, Expr, FuncFlags, Function, Inst};

/// A conservative summary of one function instance, computed once per
/// frontier entry and consulted for all 15 phase attempts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Facts {
    /// The instance's milestone flags (legality inputs).
    pub flags: FuncFlags,
    /// Number of basic blocks.
    pub block_count: u32,
    /// Number of natural loops in the CFG.
    pub loop_count: u32,
    /// Some instruction is an unconditional [`Inst::Jump`].
    pub has_jump: bool,
    /// Some instruction is a conditional branch.
    pub has_cond_branch: bool,
    /// Some expression contains a [`BinOp::Mul`].
    pub has_mul: bool,
    /// Some block is unreachable from the entry block.
    pub has_unreachable: bool,
    /// Some non-last block's final instruction is a jump or conditional
    /// branch targeting the label of the next *positional* block — exactly
    /// the shape the useless-jump phase removes or converts on its first
    /// pass.
    pub has_jump_to_next: bool,
    /// Some local slot is scalar-sized (a prerequisite for the
    /// register-allocation phase once registers are assigned).
    pub has_scalar_local: bool,
}

impl Facts {
    /// Computes the summary: one scan over all instructions and operand
    /// expressions, one CFG construction with reachability, one loop
    /// search.
    pub fn of(f: &Function) -> Facts {
        let mut has_jump = false;
        let mut has_cond_branch = false;
        let mut has_mul = false;
        for b in &f.blocks {
            for i in &b.insts {
                match i {
                    Inst::Jump { .. } => has_jump = true,
                    Inst::CondBranch { .. } => has_cond_branch = true,
                    _ => {}
                }
                if !has_mul {
                    i.visit_exprs(&mut |e| {
                        e.visit(&mut |sub| {
                            if matches!(sub, Expr::Bin(BinOp::Mul, ..)) {
                                has_mul = true;
                            }
                        });
                    });
                }
            }
        }
        let mut has_jump_to_next = false;
        for w in f.blocks.windows(2) {
            if let Some(Inst::Jump { target } | Inst::CondBranch { target, .. }) = w[0].insts.last()
            {
                if *target == w[1].label {
                    has_jump_to_next = true;
                    break;
                }
            }
        }
        let cfg = Cfg::build(f);
        let has_unreachable = cfg.reachable().iter().any(|r| !*r);
        let loop_count = loops::loop_count(&cfg) as u32;
        Facts {
            flags: f.flags,
            block_count: f.blocks.len() as u32,
            loop_count,
            has_jump,
            has_cond_branch,
            has_mul,
            has_unreachable,
            has_jump_to_next,
            has_scalar_local: f.locals.iter().any(|s| s.is_scalar()),
        }
    }

    /// The potential-active-phase mask: bit `i` set iff
    /// [`can_be_active`](crate::PhaseId::can_be_active) cannot rule
    /// phase `PhaseId::from_index(i)` dormant on an instance with these
    /// facts. Because every `can_be_active` rule is conservative, the
    /// mask *over*-approximates the instance's true active set: a clear
    /// bit is a proof of dormancy, a set bit only a possibility. The
    /// semantic-pruned merge tier compares these masks for its
    /// subsumption criterion (a candidate whose mask is a subset of its
    /// class representative's has no phase future the representative
    /// provably lacks).
    pub fn active_phase_mask(&self) -> u16 {
        let mut mask = 0u16;
        for p in crate::PhaseId::ALL {
            if p.can_be_active(self) {
                mask |= 1 << p.index();
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_rtl::builder::FunctionBuilder;
    use vpo_rtl::expr::Cond;

    #[test]
    fn straight_line_code_has_no_control_facts() {
        let mut b = FunctionBuilder::new("s");
        let r = b.reg();
        b.assign(r, Expr::Const(1));
        b.ret(Some(Expr::Reg(r)));
        let facts = Facts::of(&b.finish());
        assert!(!facts.has_jump);
        assert!(!facts.has_cond_branch);
        assert!(!facts.has_mul);
        assert!(!facts.has_unreachable);
        assert!(!facts.has_jump_to_next);
        assert_eq!(facts.loop_count, 0);
        assert_eq!(facts.block_count, 1);
    }

    #[test]
    fn loop_and_mul_facts() {
        // while (i < n) { acc = acc * 2; i = i + 1 }  as a bottom-test loop.
        let mut b = FunctionBuilder::new("l");
        let (i, n, acc) = (b.reg(), b.reg(), b.reg());
        let head = b.new_label();
        b.start_block(head);
        b.assign(acc, Expr::bin(BinOp::Mul, Expr::Reg(acc), Expr::Const(2)));
        b.assign(i, Expr::bin(BinOp::Add, Expr::Reg(i), Expr::Const(1)));
        b.compare(Expr::Reg(i), Expr::Reg(n));
        b.cond_branch(Cond::Lt, head);
        b.ret(Some(Expr::Reg(acc)));
        let facts = Facts::of(&b.finish());
        assert!(facts.has_mul);
        assert!(facts.has_cond_branch);
        assert_eq!(facts.loop_count, 1);
    }

    #[test]
    fn phase_mask_mirrors_can_be_active() {
        let mut b = FunctionBuilder::new("m");
        let r = b.reg();
        b.assign(r, Expr::bin(BinOp::Mul, Expr::Reg(r), Expr::Const(3)));
        b.ret(Some(Expr::Reg(r)));
        let facts = Facts::of(&b.finish());
        let mask = facts.active_phase_mask();
        for p in crate::PhaseId::ALL {
            assert_eq!(
                mask >> p.index() & 1 == 1,
                p.can_be_active(&facts),
                "mask bit disagrees with can_be_active for {p:?}"
            );
        }
        // Straight-line multiply-bearing code: strength reduction stays
        // possible, loop phases are provably dormant.
        assert!(mask >> crate::PhaseId::StrengthReduce.index() & 1 == 1);
        assert!(mask >> crate::PhaseId::LoopUnroll.index() & 1 == 0);
    }

    #[test]
    fn jump_to_next_is_positional() {
        let mut b = FunctionBuilder::new("j");
        let l = b.new_label();
        b.jump(l);
        b.start_block(l);
        b.ret(None);
        let f = b.finish();
        let facts = Facts::of(&f);
        assert!(facts.has_jump);
        assert!(facts.has_jump_to_next);

        // Same instructions, but the jump crosses an intervening block:
        // no longer a *useless* (next-positional) jump.
        let mut b = FunctionBuilder::new("j2");
        let mid = b.new_label();
        let l = b.new_label();
        b.jump(l);
        b.start_block(mid);
        b.ret(None);
        b.start_block(l);
        b.ret(None);
        let facts = Facts::of(&b.finish());
        assert!(facts.has_jump);
        assert!(!facts.has_jump_to_next);
        assert!(facts.has_unreachable, "the skipped block is unreachable");
    }
}
