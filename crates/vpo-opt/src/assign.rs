//! Compulsory register assignment.
//!
//! VPO implicitly performs register assignment — mapping pseudo registers
//! (compiler temporaries) to hardware registers — before the first
//! code-improving phase in a sequence that requires it. This module
//! implements that phase as interference-graph coloring with a simple
//! spill-and-retry fallback.
//!
//! Spilling is exceedingly rare in practice because the front end keeps
//! source variables in memory (that is register *allocation*'s job, phase
//! `k`) and temporaries are short-lived, but it keeps the compiler total:
//! any function can be assigned.

use std::collections::{HashMap, HashSet};

use vpo_rtl::cfg::Cfg;
use vpo_rtl::liveness::{Item, Liveness};
use vpo_rtl::{Expr, Function, Inst, Reg, RegClass, Width};

use crate::target::Target;

/// Maps every pseudo register of `f` to a hard register, spilling to fresh
/// stack slots when the pressure exceeds the target's usable registers.
/// Sets [`FuncFlags::regs_assigned`](vpo_rtl::FuncFlags) on completion.
///
/// Calling this on an already-assigned function is a no-op.
pub fn assign_registers(f: &mut Function, target: &Target) {
    if f.flags.regs_assigned {
        return;
    }
    // Spill-and-retry loop; each retry only ever introduces shorter live
    // ranges, so it terminates.
    for _round in 0..64 {
        match try_color(f, target) {
            Ok(coloring) => {
                apply_coloring(f, &coloring);
                f.flags.regs_assigned = true;
                return;
            }
            Err(victim) => spill(f, victim),
        }
    }
    panic!("register assignment failed to converge for {}", f.name);
}

/// Attempts to color all pseudos; on failure returns a spill victim.
fn try_color(f: &Function, target: &Target) -> Result<HashMap<Reg, u16>, Reg> {
    let cfg = Cfg::build(f);
    let lv = Liveness::compute(f, &cfg);

    // Interference graph over pseudo registers.
    let pseudos: Vec<Reg> = lv
        .universe
        .iter()
        .filter_map(|it| match it {
            Item::Reg(r) if r.class == RegClass::Pseudo => Some(*r),
            _ => None,
        })
        .collect();
    let mut adj: HashMap<Reg, HashSet<Reg>> =
        pseudos.iter().map(|&p| (p, HashSet::new())).collect();
    let edge = |a: Reg, b: Reg, adj: &mut HashMap<Reg, HashSet<Reg>>| {
        if a != b {
            adj.get_mut(&a).unwrap().insert(b);
            adj.get_mut(&b).unwrap().insert(a);
        }
    };
    // Parameters are all live simultaneously at entry.
    for (i, &p) in f.params.iter().enumerate() {
        for &q in &f.params[i + 1..] {
            if p.class == RegClass::Pseudo && q.class == RegClass::Pseudo {
                edge(p, q, &mut adj);
            }
        }
    }
    for bi in 0..f.blocks.len() {
        lv.for_each_inst_backward(f, bi, |_ii, inst, live_after| {
            if let Some(d) = inst.def() {
                if d.class == RegClass::Pseudo {
                    for idx in live_after.iter() {
                        if let Item::Reg(r) = lv.universe[idx] {
                            if r.class == RegClass::Pseudo {
                                edge(d, r, &mut adj);
                            }
                        }
                    }
                }
            }
        });
    }

    // Greedy coloring in pseudo-index order (deterministic). Parameters are
    // colored first so that argument registers get the lowest numbers, like
    // a real calling convention.
    let mut order: Vec<Reg> =
        f.params.iter().copied().filter(|p| p.class == RegClass::Pseudo).collect();
    for &p in &pseudos {
        if !order.contains(&p) {
            order.push(p);
        }
    }
    order.sort_by_key(|r| {
        let is_param = f.params.contains(r);
        (if is_param { 0 } else { 1 }, r.index)
    });
    let mut coloring: HashMap<Reg, u16> = HashMap::new();
    for &p in &order {
        let mut used = HashSet::new();
        if let Some(ns) = adj.get(&p) {
            for n in ns {
                if let Some(&c) = coloring.get(n) {
                    used.insert(c);
                }
            }
        }
        match (0..target.usable_regs).find(|c| !used.contains(c)) {
            Some(c) => {
                coloring.insert(p, c);
            }
            None => {
                // Spill the neighbor with the most interference (excluding
                // parameters, which must stay in registers at entry), or
                // this pseudo itself.
                let victim = adj[&p]
                    .iter()
                    .copied()
                    .chain(std::iter::once(p))
                    .filter(|v| !f.params.contains(v))
                    .max_by_key(|v| (adj[v].len(), v.index));
                return Err(victim.unwrap_or(p));
            }
        }
    }
    Ok(coloring)
}

/// Rewrites every register reference through the coloring.
fn apply_coloring(f: &mut Function, coloring: &HashMap<Reg, u16>) {
    let map = |r: Reg| -> Reg {
        match coloring.get(&r) {
            Some(&c) => Reg::hard(c),
            None => r, // unreferenced pseudo or already hard
        }
    };
    for b in &mut f.blocks {
        for inst in &mut b.insts {
            if let Inst::Assign { dst, .. } = inst {
                *dst = map(*dst);
            }
            if let Inst::Call { dst: Some(d), .. } = inst {
                *d = map(*d);
            }
            inst.visit_exprs_mut(&mut |e| {
                e.visit_mut(&mut |sub| {
                    if let Expr::Reg(r) = sub {
                        *r = map(*r);
                    }
                });
            });
        }
    }
    for p in &mut f.params {
        *p = map(*p);
    }
}

/// Spills pseudo `victim` to a fresh (non-allocatable) stack slot:
/// every definition is followed by a store, every use loads into a fresh
/// short-lived pseudo.
fn spill(f: &mut Function, victim: Reg) {
    let slot = f.new_local(format!("spill_{}", victim.index), 4);
    // The slot must not later be register-allocated by phase `k`, which
    // would undo the spill; taking its address marks it ineligible.
    f.locals[slot.0 as usize].addr_taken = true;

    let nblocks = f.blocks.len();
    for bi in 0..nblocks {
        let mut ii = 0;
        while ii < f.blocks[bi].insts.len() {
            let mut inserted_after = 0;
            // Uses: load into a fresh temp first.
            if f.blocks[bi].insts[ii].uses_reg(victim) {
                let tmp = f.new_pseudo();
                f.blocks[bi].insts[ii].substitute_reg_uses(victim, &Expr::Reg(tmp));
                f.blocks[bi].insts.insert(
                    ii,
                    Inst::Assign { dst: tmp, src: Expr::load(Width::Word, Expr::LocalAddr(slot)) },
                );
                ii += 1; // skip the inserted load
            }
            // Defs: store right after.
            if f.blocks[bi].insts[ii].def() == Some(victim) {
                f.blocks[bi].insts.insert(
                    ii + 1,
                    Inst::Store {
                        width: Width::Word,
                        addr: Expr::LocalAddr(slot),
                        src: Expr::Reg(victim),
                    },
                );
                inserted_after = 1;
            }
            ii += 1 + inserted_after;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_rtl::builder::FunctionBuilder;
    use vpo_rtl::BinOp;

    #[test]
    fn assigns_all_pseudos_to_hard_regs() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let t = b.reg();
        b.assign(t, Expr::bin(BinOp::Add, Expr::Reg(x), Expr::Const(1)));
        b.ret(Some(Expr::Reg(t)));
        let mut f = b.finish();
        assign_registers(&mut f, &Target::default());
        assert!(f.flags.regs_assigned);
        for r in f.all_regs() {
            assert!(r.is_hard(), "{r} left unassigned");
        }
        assert!(f.params[0].is_hard());
    }

    #[test]
    fn non_interfering_temps_share_registers() {
        let mut b = FunctionBuilder::new("f");
        let t1 = b.reg();
        let t2 = b.reg();
        let out = b.reg();
        b.assign(t1, Expr::Const(1));
        b.assign(out, Expr::Reg(t1));
        b.assign(t2, Expr::Const(2));
        b.assign(out, Expr::bin(BinOp::Add, Expr::Reg(out), Expr::Reg(t2)));
        b.ret(Some(Expr::Reg(out)));
        let mut f = b.finish();
        assign_registers(&mut f, &Target::default());
        // t1 and t2 never live simultaneously: they can share a color.
        let regs = f.all_regs();
        let distinct: std::collections::HashSet<_> = regs.iter().collect();
        assert!(distinct.len() <= 2, "expected register reuse, got {distinct:?}");
    }

    #[test]
    fn spills_when_pressure_exceeds_registers() {
        // Create 20 simultaneously-live temporaries on a 4-register target.
        let mut b = FunctionBuilder::new("hot");
        let temps: Vec<_> = (0..20).map(|_| b.reg()).collect();
        for (i, &t) in temps.iter().enumerate() {
            b.assign(t, Expr::Const(i as i64 % 7)); // keep immediates legal
        }
        let acc = b.reg();
        b.assign(acc, Expr::Const(0));
        for &t in &temps {
            b.assign(acc, Expr::bin(BinOp::Add, Expr::Reg(acc), Expr::Reg(t)));
        }
        b.ret(Some(Expr::Reg(acc)));
        let mut f = b.finish();
        let target = Target { usable_regs: 4, ..Target::default() };
        assign_registers(&mut f, &target);
        assert!(f.flags.regs_assigned);
        // Every register is hard and within range.
        for r in f.all_regs() {
            assert!(r.is_hard() && r.index < 4, "bad register {r}");
        }
        // Spill slots were created and are not allocatable.
        assert!(f.locals.iter().any(|l| l.name.starts_with("spill_")));
        assert!(f.allocatable_locals().is_empty());
    }

    #[test]
    fn idempotent() {
        let mut b = FunctionBuilder::new("f");
        let t = b.reg();
        b.assign(t, Expr::Const(1));
        b.ret(Some(Expr::Reg(t)));
        let mut f = b.finish();
        assign_registers(&mut f, &Target::default());
        let snapshot = f.clone();
        assign_registers(&mut f, &Target::default());
        assert_eq!(f, snapshot);
    }
}
