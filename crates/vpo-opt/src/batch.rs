//! The conventional ("old") batch compiler.
//!
//! "The VPO compiler applies optimization phases to all functions in one
//! default order. To allow aggressive optimizations, VPO applies many
//! optimization phases in a loop until there are no further program
//! changes produced by any optimization phase." (Section 6 of the paper.)
//!
//! [`batch_compile`] reproduces that structure: a fixed prelude, a main
//! loop over all phases iterated to a global fixpoint, a one-shot loop
//! unrolling attempt, and a final clean-up loop. The attempt/active counts
//! it reports are the baselines of Table 7, against which the
//! *probabilistic* batch compiler of the `phase-order` crate is compared.

use vpo_rtl::Function;

use crate::{attempt, PhaseId, Target};

/// Statistics and trace of one batch compilation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Number of phases attempted (the paper's "Attempted Phases").
    pub attempted: usize,
    /// Number of phases that were active.
    pub active: usize,
    /// The active phases in application order (the successful sequence).
    pub sequence: Vec<PhaseId>,
}

impl BatchStats {
    fn record(&mut self, phase: PhaseId, active: bool) {
        self.attempted += 1;
        if active {
            self.active += 1;
            self.sequence.push(phase);
        }
    }
}

/// The fixed order used by the main fixpoint loop: cheap clean-ups first,
/// then the expression-level optimizations, then control-flow polish.
pub const BATCH_LOOP_ORDER: [PhaseId; 13] = [
    PhaseId::BranchChain,
    PhaseId::Cse,
    PhaseId::InsnSelect,
    PhaseId::DeadAssign,
    PhaseId::StrengthReduce,
    PhaseId::RegAlloc,
    PhaseId::LoopXform,
    PhaseId::CodeAbstract,
    PhaseId::LoopJumps,
    PhaseId::BlockReorder,
    PhaseId::UselessJump,
    PhaseId::ReverseBranch,
    PhaseId::Unreachable,
];

/// Compiles `f` with the conventional batch order, returning the attempt
/// statistics.
pub fn batch_compile(f: &mut Function, target: &Target) -> BatchStats {
    let mut stats = BatchStats::default();
    let try_phase = |f: &mut Function, p: PhaseId, stats: &mut BatchStats| -> bool {
        let outcome = attempt(f, p, target);
        stats.record(p, outcome.active);
        outcome.active
    };

    // Prelude: evaluation order while still legal, then initial selection.
    try_phase(f, PhaseId::EvalOrder, &mut stats);
    try_phase(f, PhaseId::InsnSelect, &mut stats);
    try_phase(f, PhaseId::RegAlloc, &mut stats);

    // Main loop to fixpoint.
    loop {
        let mut any = false;
        for p in BATCH_LOOP_ORDER {
            any |= try_phase(f, p, &mut stats);
        }
        if !any {
            break;
        }
    }

    // One-shot loop unrolling, then clean up again.
    if try_phase(f, PhaseId::LoopUnroll, &mut stats) {
        loop {
            let mut any = false;
            for p in BATCH_LOOP_ORDER {
                any |= try_phase(f, p, &mut stats);
            }
            if !any {
                break;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_rtl::builder::FunctionBuilder;
    use vpo_rtl::{BinOp, Cond, Expr, Width};

    /// sum = 0; for (i = 0; i < 1000; i++) sum += a[i]; — the paper's
    /// Figure 5 source, in naive front-end style.
    fn figure5_naive() -> Function {
        let mut b = FunctionBuilder::new("sum");
        let a = b.global("a");
        let sum_slot = b.local("sum", 4);
        let i_slot = b.local("i", 4);
        let t0 = b.reg();
        b.assign(t0, Expr::Const(0));
        b.store(Width::Word, Expr::LocalAddr(sum_slot), Expr::Reg(t0));
        let t1 = b.reg();
        b.assign(t1, Expr::Const(0));
        b.store(Width::Word, Expr::LocalAddr(i_slot), Expr::Reg(t1));
        let header = b.new_label();
        let exit = b.new_label();
        b.start_block(header);
        let t2 = b.reg();
        b.assign(t2, Expr::load(Width::Word, Expr::LocalAddr(i_slot)));
        let t3 = b.reg();
        b.assign(t3, Expr::Const(1000));
        b.compare(Expr::Reg(t2), Expr::Reg(t3));
        b.cond_branch(Cond::Ge, exit);
        // sum += a[i]
        let t4 = b.reg();
        b.assign(t4, Expr::Hi(a));
        let t5 = b.reg();
        b.assign(t5, Expr::bin(BinOp::Add, Expr::Reg(t4), Expr::Lo(a)));
        let t6 = b.reg();
        b.assign(t6, Expr::load(Width::Word, Expr::LocalAddr(i_slot)));
        let t7 = b.reg();
        b.assign(t7, Expr::Const(4));
        let t8 = b.reg();
        b.assign(t8, Expr::bin(BinOp::Mul, Expr::Reg(t6), Expr::Reg(t7)));
        let t9 = b.reg();
        b.assign(t9, Expr::bin(BinOp::Add, Expr::Reg(t5), Expr::Reg(t8)));
        let t10 = b.reg();
        b.assign(t10, Expr::load(Width::Word, Expr::Reg(t9)));
        let t11 = b.reg();
        b.assign(t11, Expr::load(Width::Word, Expr::LocalAddr(sum_slot)));
        let t12 = b.reg();
        b.assign(t12, Expr::bin(BinOp::Add, Expr::Reg(t11), Expr::Reg(t10)));
        b.store(Width::Word, Expr::LocalAddr(sum_slot), Expr::Reg(t12));
        // i += 1
        let t13 = b.reg();
        b.assign(t13, Expr::load(Width::Word, Expr::LocalAddr(i_slot)));
        let t14 = b.reg();
        b.assign(t14, Expr::bin(BinOp::Add, Expr::Reg(t13), Expr::Const(1)));
        b.store(Width::Word, Expr::LocalAddr(i_slot), Expr::Reg(t14));
        b.jump(header);
        b.start_block(exit);
        let t15 = b.reg();
        b.assign(t15, Expr::load(Width::Word, Expr::LocalAddr(sum_slot)));
        b.ret(Some(Expr::Reg(t15)));
        b.finish()
    }

    #[test]
    fn batch_compiles_figure5_substantially() {
        let mut f = figure5_naive();
        let before = f.inst_count();
        let target = Target::default();
        let stats = batch_compile(&mut f, &target);
        assert!(stats.active >= 5, "expected several active phases: {stats:?}");
        assert!(stats.attempted > stats.active);
        // The final code is smaller than the naive input even though the
        // loop was unrolled (duplicating the kernel); without unrolling the
        // kernel alone drops from 18 instructions to about 8.
        let after = f.inst_count();
        assert!(after < before, "batch should shrink naive code: {before} -> {after}");
        assert!(stats.sequence.contains(&PhaseId::LoopUnroll));
        // Everything must remain legal machine code.
        target.check_function(&f).unwrap();
        // The loop variable and sum must live in registers now (k active).
        assert!(stats.sequence.contains(&PhaseId::RegAlloc));
        // A second batch run finds no scalar/control work left — only loop
        // unrolling (which doubles again while under the size limit) and
        // the jump clean-up it enables may fire.
        let stats2 = batch_compile(&mut f, &target);
        assert!(
            stats2.sequence.iter().all(|p| matches!(
                p,
                PhaseId::LoopUnroll | PhaseId::UselessJump | PhaseId::BlockReorder
            )),
            "unexpected rework: {stats2:?}"
        );
    }

    #[test]
    fn batch_is_deterministic() {
        let mut f1 = figure5_naive();
        let mut f2 = figure5_naive();
        let target = Target::default();
        let s1 = batch_compile(&mut f1, &target);
        let s2 = batch_compile(&mut f2, &target);
        assert_eq!(s1, s2);
        assert_eq!(vpo_rtl::canon::fingerprint(&f1), vpo_rtl::canon::fingerprint(&f2));
    }
}
