//! The fifteen VPO optimization phases of Kulkarni et al. (CGO 2006),
//! plus the compulsory phases and the StrongARM-like target model.
//!
//! Table 1 of the paper lists the candidate code-improving phases and the
//! single-letter designations used throughout; this crate mirrors them
//! exactly:
//!
//! | Id | Phase | Module |
//! |----|-------|--------|
//! | `b` | branch chaining | [`phases::branch_chain`] |
//! | `c` | common subexpression elimination | [`phases::cse`] |
//! | `d` | remove unreachable code | [`phases::unreachable`] |
//! | `g` | loop unrolling | [`phases::loop_unroll`] |
//! | `h` | dead assignment elimination | [`phases::dead_assign`] |
//! | `i` | block reordering | [`phases::block_reorder`] |
//! | `j` | minimize loop jumps | [`phases::loop_jumps`] |
//! | `k` | register allocation | [`phases::regalloc`] |
//! | `l` | loop transformations | [`phases::loop_xform`] |
//! | `n` | code abstraction | [`phases::code_abstract`] |
//! | `o` | evaluation order determination | [`phases::eval_order`] |
//! | `q` | strength reduction | [`phases::strength_reduce`] |
//! | `r` | reverse branches | [`phases::reverse_branch`] |
//! | `s` | instruction selection | [`phases::insn_select`] |
//! | `u` | remove useless jumps | [`phases::useless_jump`] |
//!
//! Phase-ordering restrictions (Section 3 of the paper):
//!
//! * *evaluation order determination* (`o`) can only be performed before
//!   register assignment;
//! * *loop unrolling* (`g`) and the *loop transformations* (`l`), which
//!   analyze values in registers, can only be performed after register
//!   allocation (`k`) has been applied;
//! * *register allocation* (`k`) can only be useful after instruction
//!   selection (`s`), because only then do candidate loads and stores
//!   contain the addresses of local scalars — in this implementation that
//!   dependence is *behavioural* (k is simply dormant until `s` creates the
//!   direct-address patterns), which reproduces the paper's observed
//!   `s → k` enabling relation.
//!
//! Two further compulsory transformations mirror VPO:
//!
//! * **register assignment** ([`assign`]) maps pseudo registers to hard
//!   registers and is performed implicitly before the first phase in a
//!   sequence that requires registers;
//! * **merge basic blocks / eliminate empty blocks** ([`normalize`]) are
//!   performed implicitly after any transformation that could enable them;
//!   they only change the control-flow representation seen by the compiler
//!   and never add or remove real instructions;
//! * **fix entry exit** ([`finalize`]) inserts the activation-record
//!   management at emission time, after the last code-improving phase.
//!
//! # Example
//!
//! ```
//! use vpo_opt::{attempt, PhaseId, Target};
//! use vpo_rtl::builder::FunctionBuilder;
//! use vpo_rtl::{BinOp, Expr};
//!
//! let mut b = FunctionBuilder::new("f");
//! let t0 = b.reg();
//! let t1 = b.reg();
//! b.assign(t0, Expr::Const(1));
//! b.assign(t1, Expr::bin(BinOp::Add, Expr::Reg(t0), Expr::Const(2)));
//! b.ret(Some(Expr::Reg(t1)));
//! let mut f = b.finish();
//!
//! let target = Target::default();
//! // Instruction selection folds the chain of constants.
//! let outcome = attempt(&mut f, PhaseId::InsnSelect, &target);
//! assert!(outcome.active);
//! ```

pub mod assign;
pub mod batch;
pub mod emit;
pub mod facts;
pub mod finalize;
pub mod normalize;
pub mod phases;
pub mod target;

pub use target::Target;

use vpo_rtl::Function;

/// The fifteen candidate optimization phases, with the paper's
/// single-letter designations.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PhaseId {
    /// `b` — branch chaining.
    BranchChain,
    /// `c` — common subexpression elimination (includes global constant and
    /// copy propagation).
    Cse,
    /// `d` — remove unreachable code.
    Unreachable,
    /// `g` — loop unrolling (fixed factor of two, as in the paper).
    LoopUnroll,
    /// `h` — dead assignment elimination.
    DeadAssign,
    /// `i` — block reordering.
    BlockReorder,
    /// `j` — minimize loop jumps.
    LoopJumps,
    /// `k` — register allocation (coloring of local scalars).
    RegAlloc,
    /// `l` — loop transformations (invariant code motion, loop strength
    /// reduction).
    LoopXform,
    /// `n` — code abstraction (cross-jumping and code hoisting).
    CodeAbstract,
    /// `o` — evaluation order determination.
    EvalOrder,
    /// `q` — strength reduction (multiply by constant into shifts/adds).
    StrengthReduce,
    /// `r` — reverse branches.
    ReverseBranch,
    /// `s` — instruction selection.
    InsnSelect,
    /// `u` — remove useless jumps.
    UselessJump,
}

impl PhaseId {
    /// All phases, in the paper's table order (b c d g h i j k l n o q r s u).
    pub const ALL: [PhaseId; 15] = [
        PhaseId::BranchChain,
        PhaseId::Cse,
        PhaseId::Unreachable,
        PhaseId::LoopUnroll,
        PhaseId::DeadAssign,
        PhaseId::BlockReorder,
        PhaseId::LoopJumps,
        PhaseId::RegAlloc,
        PhaseId::LoopXform,
        PhaseId::CodeAbstract,
        PhaseId::EvalOrder,
        PhaseId::StrengthReduce,
        PhaseId::ReverseBranch,
        PhaseId::InsnSelect,
        PhaseId::UselessJump,
    ];

    /// Number of phases (15).
    pub const COUNT: usize = 15;

    /// Dense index of the phase in [`PhaseId::ALL`].
    pub fn index(self) -> usize {
        PhaseId::ALL.iter().position(|&p| p == self).expect("phase in ALL")
    }

    /// Builds a phase from its dense index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= PhaseId::COUNT`.
    pub fn from_index(i: usize) -> PhaseId {
        PhaseId::ALL[i]
    }

    /// The paper's single-letter designation.
    pub fn letter(self) -> char {
        match self {
            PhaseId::BranchChain => 'b',
            PhaseId::Cse => 'c',
            PhaseId::Unreachable => 'd',
            PhaseId::LoopUnroll => 'g',
            PhaseId::DeadAssign => 'h',
            PhaseId::BlockReorder => 'i',
            PhaseId::LoopJumps => 'j',
            PhaseId::RegAlloc => 'k',
            PhaseId::LoopXform => 'l',
            PhaseId::CodeAbstract => 'n',
            PhaseId::EvalOrder => 'o',
            PhaseId::StrengthReduce => 'q',
            PhaseId::ReverseBranch => 'r',
            PhaseId::InsnSelect => 's',
            PhaseId::UselessJump => 'u',
        }
    }

    /// Parses a single-letter designation.
    pub fn from_letter(c: char) -> Option<PhaseId> {
        PhaseId::ALL.iter().copied().find(|p| p.letter() == c)
    }

    /// The full phase name as used in Table 1 of the paper.
    pub fn name(self) -> &'static str {
        match self {
            PhaseId::BranchChain => "branch chaining",
            PhaseId::Cse => "common subexpression elimination",
            PhaseId::Unreachable => "remove unreachable code",
            PhaseId::LoopUnroll => "loop unrolling",
            PhaseId::DeadAssign => "dead assignment elimination",
            PhaseId::BlockReorder => "block reordering",
            PhaseId::LoopJumps => "minimize loop jumps",
            PhaseId::RegAlloc => "register allocation",
            PhaseId::LoopXform => "loop transformations",
            PhaseId::CodeAbstract => "code abstraction",
            PhaseId::EvalOrder => "evaluation order determination",
            PhaseId::StrengthReduce => "strength reduction",
            PhaseId::ReverseBranch => "reverse branches",
            PhaseId::InsnSelect => "instruction selection",
            PhaseId::UselessJump => "remove useless jumps",
        }
    }

    /// Whether the phase analyzes or transforms register contents and thus
    /// triggers implicit register assignment when attempted.
    pub fn requires_registers(self) -> bool {
        match self {
            PhaseId::Cse
            | PhaseId::LoopUnroll
            | PhaseId::DeadAssign
            | PhaseId::RegAlloc
            | PhaseId::LoopXform
            | PhaseId::CodeAbstract
            | PhaseId::StrengthReduce
            | PhaseId::InsnSelect => true,
            PhaseId::BranchChain
            | PhaseId::Unreachable
            | PhaseId::BlockReorder
            | PhaseId::LoopJumps
            | PhaseId::EvalOrder
            | PhaseId::ReverseBranch
            | PhaseId::UselessJump => false,
        }
    }

    /// Whether the phase is legal given the function's milestone flags
    /// (Section 3 ordering restrictions). Illegal phases are treated as
    /// dormant by the enumeration, matching the paper's statistics.
    pub fn is_legal(self, flags: vpo_rtl::FuncFlags) -> bool {
        match self {
            PhaseId::EvalOrder => !flags.regs_assigned,
            PhaseId::LoopUnroll | PhaseId::LoopXform => flags.reg_allocated,
            _ => true,
        }
    }

    /// Whether [`attempt`] could possibly report this phase active on an
    /// instance summarized by `facts`. A `false` answer is a *proof of
    /// dormancy*: the enumerator records the attempt dormant without
    /// cloning the function or running the phase.
    ///
    /// Every rule is conservative against the phase implementation it
    /// filters, and — for phases with [`requires_registers`] — uses only
    /// facts invariant under implicit register assignment and spilling
    /// (see the [`facts`] module docs for the full soundness argument):
    ///
    /// * branch chaining only changes a target by following a
    ///   trivial-jump block, so some [`Inst::Jump`](vpo_rtl::Inst::Jump)
    ///   must exist;
    /// * unreachable-code removal is active iff some block is
    ///   unreachable (exact);
    /// * the three loop phases (`g`, `j`, `l`) all iterate the natural
    ///   loops of the CFG and are dormant without one;
    /// * block reordering moves a block only to replace a terminating
    ///   jump, so some jump must exist;
    /// * register allocation needs an eligible local, and eligible
    ///   locals are a subset of scalar locals — but spilling during the
    ///   implicit assignment can *create* scalar locals, so the rule
    ///   only fires once `regs_assigned` is already true;
    /// * code abstraction's cross-jump form needs predecessors ending in
    ///   explicit jumps and its hoist form needs a two-way (conditional)
    ///   branch;
    /// * strength reduction only rewrites multiplies;
    /// * reverse branches needs a conditional branch in either of its
    ///   shapes;
    /// * useless-jump removal is active iff some non-last block ends by
    ///   transferring to the next positional block (exact);
    /// * CSE, dead-assignment elimination, evaluation-order
    ///   determination, and instruction selection have no cheap sound
    ///   dormancy proof and are always attempted.
    ///
    /// [`requires_registers`]: PhaseId::requires_registers
    pub fn can_be_active(self, facts: &facts::Facts) -> bool {
        if !self.is_legal(facts.flags) {
            return false;
        }
        match self {
            PhaseId::BranchChain | PhaseId::BlockReorder => facts.has_jump,
            PhaseId::Unreachable => facts.has_unreachable,
            PhaseId::LoopUnroll | PhaseId::LoopJumps | PhaseId::LoopXform => facts.loop_count > 0,
            PhaseId::RegAlloc => !facts.flags.regs_assigned || facts.has_scalar_local,
            PhaseId::CodeAbstract => facts.has_jump || facts.has_cond_branch,
            PhaseId::StrengthReduce => facts.has_mul,
            PhaseId::ReverseBranch => facts.has_cond_branch,
            PhaseId::UselessJump => facts.has_jump_to_next,
            PhaseId::Cse | PhaseId::DeadAssign | PhaseId::EvalOrder | PhaseId::InsnSelect => true,
        }
    }
}

impl std::fmt::Display for PhaseId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// Result of attempting a phase on a function.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Outcome {
    /// The phase itself changed the program representation (the paper's
    /// *active*; otherwise the attempt was *dormant*).
    pub active: bool,
    /// Implicit register assignment ran before the phase (the function was
    /// mutated even if the phase was dormant).
    pub assignment_ran: bool,
}

/// Attempts a single optimization phase on `f`, running implicit register
/// assignment first if the phase requires registers, and implicit basic
/// block normalization afterwards if the phase was active.
///
/// Returns the attempt [`Outcome`]. An illegal phase (per
/// [`PhaseId::is_legal`]) is reported dormant without touching `f`.
pub fn attempt(f: &mut Function, phase: PhaseId, target: &Target) -> Outcome {
    if !phase.is_legal(f.flags) {
        return Outcome { active: false, assignment_ran: false };
    }
    let mut assignment_ran = false;
    if phase.requires_registers() && !f.flags.regs_assigned {
        assign::assign_registers(f, target);
        assignment_ran = true;
    }
    let active = phases::run(phase, f, target);
    if active {
        if phase == PhaseId::RegAlloc {
            f.flags.reg_allocated = true;
        }
        normalize::normalize(f);
    }
    Outcome { active, assignment_ran }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letters_match_the_paper() {
        let letters: String = PhaseId::ALL.iter().map(|p| p.letter()).collect();
        assert_eq!(letters, "bcdghijklnoqrsu");
    }

    #[test]
    fn letter_round_trip() {
        for p in PhaseId::ALL {
            assert_eq!(PhaseId::from_letter(p.letter()), Some(p));
            assert_eq!(PhaseId::from_index(p.index()), p);
        }
        assert_eq!(PhaseId::from_letter('z'), None);
    }

    #[test]
    fn legality_restrictions() {
        use vpo_rtl::FuncFlags;
        let start = FuncFlags::default();
        let assigned = FuncFlags { regs_assigned: true, reg_allocated: false };
        let allocated = FuncFlags { regs_assigned: true, reg_allocated: true };
        assert!(PhaseId::EvalOrder.is_legal(start));
        assert!(!PhaseId::EvalOrder.is_legal(assigned));
        assert!(!PhaseId::LoopUnroll.is_legal(start));
        assert!(!PhaseId::LoopXform.is_legal(assigned));
        assert!(PhaseId::LoopUnroll.is_legal(allocated));
        assert!(PhaseId::Cse.is_legal(start) && PhaseId::Cse.is_legal(allocated));
    }

    #[test]
    fn prefilters_respect_legality_and_never_filter_the_open_phases() {
        use vpo_rtl::builder::FunctionBuilder;
        use vpo_rtl::Expr;
        let mut b = FunctionBuilder::new("t");
        let r = b.reg();
        b.assign(r, Expr::Const(1));
        b.ret(Some(Expr::Reg(r)));
        let mut f = b.finish();
        f.flags.regs_assigned = true;
        let facts = facts::Facts::of(&f);
        for p in PhaseId::ALL {
            // Illegal implies provably dormant.
            if !p.is_legal(f.flags) {
                assert!(!p.can_be_active(&facts), "{p}");
            }
        }
        // Phases with no cheap dormancy proof are always attempted.
        for p in [PhaseId::Cse, PhaseId::DeadAssign, PhaseId::InsnSelect] {
            assert!(p.can_be_active(&facts), "{p}");
        }
        // Straight-line code proves all control-flow phases dormant.
        for p in [
            PhaseId::BranchChain,
            PhaseId::Unreachable,
            PhaseId::BlockReorder,
            PhaseId::LoopJumps,
            PhaseId::CodeAbstract,
            PhaseId::StrengthReduce,
            PhaseId::ReverseBranch,
            PhaseId::UselessJump,
        ] {
            assert!(!p.can_be_active(&facts), "{p}");
        }
    }
}
