//! Semantic analysis for MiniC: scope/definition checking, arity checking,
//! lvalue validation, and array/scalar usage consistency.

use std::collections::{HashMap, HashSet};

use crate::ast::*;
use crate::CompileError;

/// What a name refers to within a scope.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Binding {
    Scalar,
    Array,
}

/// Checks a whole translation unit.
///
/// # Errors
///
/// Returns the first semantic error: duplicate definitions, use of
/// undeclared names, indexing a scalar, assigning to an array, calling an
/// unknown function (external intrinsics are allowed), or wrong arity.
pub fn check(unit: &Unit) -> Result<(), CompileError> {
    let mut globals: HashMap<&str, Binding> = HashMap::new();
    for g in &unit.globals {
        let b = if g.array_len.is_some() { Binding::Array } else { Binding::Scalar };
        if globals.insert(&g.name, b).is_some() {
            return Err(CompileError::new(g.line, format!("duplicate global `{}`", g.name)));
        }
        if let (Some(n), GlobalInit::List(v)) = (g.array_len, &g.init) {
            if v.len() > n {
                return Err(CompileError::new(
                    g.line,
                    format!("initializer longer than array `{}`", g.name),
                ));
            }
        }
    }
    let mut fns: HashMap<&str, usize> = HashMap::new();
    for f in &unit.functions {
        if fns.insert(&f.name, f.params.len()).is_some() {
            return Err(CompileError::new(f.line, format!("duplicate function `{}`", f.name)));
        }
        if globals.contains_key(f.name.as_str()) {
            return Err(CompileError::new(
                f.line,
                format!("`{}` defined as both global and function", f.name),
            ));
        }
    }
    for f in &unit.functions {
        let mut scopes: Vec<HashMap<String, Binding>> = vec![HashMap::new()];
        let mut seen = HashSet::new();
        for p in &f.params {
            if !seen.insert(&p.name) {
                return Err(CompileError::new(f.line, format!("duplicate parameter `{}`", p.name)));
            }
            let b = if p.is_array { Binding::Array } else { Binding::Scalar };
            scopes[0].insert(p.name.clone(), b);
        }
        let cx = Cx { globals: &globals, fns: &fns };
        check_stmts(&f.body, &mut scopes, &cx, 0)?;
    }
    Ok(())
}

struct Cx<'a> {
    globals: &'a HashMap<&'a str, Binding>,
    fns: &'a HashMap<&'a str, usize>,
}

fn lookup(name: &str, scopes: &[HashMap<String, Binding>], cx: &Cx) -> Option<Binding> {
    for s in scopes.iter().rev() {
        if let Some(&b) = s.get(name) {
            return Some(b);
        }
    }
    cx.globals.get(name).copied()
}

fn check_stmts(
    stmts: &[Stmt],
    scopes: &mut Vec<HashMap<String, Binding>>,
    cx: &Cx,
    loop_depth: usize,
) -> Result<(), CompileError> {
    scopes.push(HashMap::new());
    for s in stmts {
        match s {
            Stmt::Decl { name, array_len, init, line, .. } => {
                if let Some(e) = init {
                    if array_len.is_some() {
                        return Err(CompileError::new(
                            *line,
                            "local arrays cannot have initializers",
                        ));
                    }
                    check_expr(e, scopes, cx)?;
                }
                let b = if array_len.is_some() { Binding::Array } else { Binding::Scalar };
                if scopes.last_mut().unwrap().insert(name.clone(), b).is_some() {
                    return Err(CompileError::new(*line, format!("duplicate local `{name}`")));
                }
            }
            Stmt::Expr(e) => check_expr(e, scopes, cx)?,
            Stmt::If { cond, then, els } => {
                check_expr(cond, scopes, cx)?;
                check_stmts(then, scopes, cx, loop_depth)?;
                check_stmts(els, scopes, cx, loop_depth)?;
            }
            Stmt::While { cond, body } => {
                check_expr(cond, scopes, cx)?;
                check_stmts(body, scopes, cx, loop_depth + 1)?;
            }
            Stmt::DoWhile { body, cond } => {
                check_stmts(body, scopes, cx, loop_depth + 1)?;
                check_expr(cond, scopes, cx)?;
            }
            Stmt::For { init, cond, step, body } => {
                for e in [init, cond, step].into_iter().flatten() {
                    check_expr(e, scopes, cx)?;
                }
                check_stmts(body, scopes, cx, loop_depth + 1)?;
            }
            Stmt::Return(v) => {
                if let Some(e) = v {
                    check_expr(e, scopes, cx)?;
                }
            }
            Stmt::Break(line) | Stmt::Continue(line) => {
                if loop_depth == 0 {
                    return Err(CompileError::new(*line, "break/continue outside of a loop"));
                }
            }
            Stmt::Block(inner) => check_stmts(inner, scopes, cx, loop_depth)?,
        }
    }
    scopes.pop();
    Ok(())
}

fn check_expr(e: &Expr, scopes: &[HashMap<String, Binding>], cx: &Cx) -> Result<(), CompileError> {
    match e {
        Expr::Int(..) => Ok(()),
        Expr::Var(name, line) => match lookup(name, scopes, cx) {
            Some(_) => Ok(()),
            None => Err(CompileError::new(*line, format!("use of undeclared `{name}`"))),
        },
        Expr::Index { base, index, line } => {
            match lookup(base, scopes, cx) {
                Some(Binding::Array) => {}
                Some(Binding::Scalar) => {
                    return Err(CompileError::new(*line, format!("`{base}` is not an array")))
                }
                None => {
                    return Err(CompileError::new(*line, format!("use of undeclared `{base}`")))
                }
            }
            check_expr(index, scopes, cx)
        }
        Expr::Binary { lhs, rhs, .. }
        | Expr::Cmp { lhs, rhs, .. }
        | Expr::Logical { lhs, rhs, .. } => {
            check_expr(lhs, scopes, cx)?;
            check_expr(rhs, scopes, cx)
        }
        Expr::Neg(a, _) | Expr::Not(a, _) | Expr::LogicalNot(a, _) => check_expr(a, scopes, cx),
        Expr::Assign { target, value, line } => {
            match &**target {
                Expr::Var(name, _) => match lookup(name, scopes, cx) {
                    Some(Binding::Scalar) => {}
                    Some(Binding::Array) => {
                        return Err(CompileError::new(
                            *line,
                            format!("cannot assign to array `{name}`"),
                        ))
                    }
                    None => {
                        return Err(CompileError::new(*line, format!("use of undeclared `{name}`")))
                    }
                },
                Expr::Index { .. } => check_expr(target, scopes, cx)?,
                _ => return Err(CompileError::new(*line, "invalid assignment target")),
            }
            check_expr(value, scopes, cx)
        }
        Expr::Call { callee, args, line } => {
            if let Some(&arity) = cx.fns.get(callee.as_str()) {
                if arity != args.len() {
                    return Err(CompileError::new(
                        *line,
                        format!("`{callee}` expects {arity} argument(s), got {}", args.len()),
                    ));
                }
            }
            // Unknown callees are permitted: they become external calls
            // resolved by the simulator (or trapped at run time).
            for a in args {
                check_expr(a, scopes, cx)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<(), CompileError> {
        check(&parse(&lex(src).unwrap()).unwrap())
    }

    #[test]
    fn accepts_valid_program() {
        check_src(
            r#"
            int table[8];
            int sum(int a[], int n) {
                int s = 0;
                int i;
                for (i = 0; i < n; i++) s += a[i];
                return s;
            }
            int main() { return sum(table, 8); }
        "#,
        )
        .unwrap();
    }

    #[test]
    fn rejects_undeclared() {
        let e = check_src("int f() { return x; }").unwrap_err();
        assert!(e.message.contains("undeclared"));
    }

    #[test]
    fn rejects_indexing_scalar() {
        let e = check_src("int f(int x) { return x[0]; }").unwrap_err();
        assert!(e.message.contains("not an array"));
    }

    #[test]
    fn rejects_bad_arity() {
        let e = check_src("int g(int a) { return a; } int f() { return g(1, 2); }").unwrap_err();
        assert!(e.message.contains("argument"));
    }

    #[test]
    fn rejects_break_outside_loop() {
        let e = check_src("void f() { break; }").unwrap_err();
        assert!(e.message.contains("outside"));
    }

    #[test]
    fn rejects_duplicates() {
        assert!(check_src("int f() { return 0; } int f() { return 1; }").is_err());
        assert!(check_src("int x; int x;").is_err());
        assert!(check_src("int f(int a, int a) { return a; }").is_err());
        assert!(check_src("int f() { int y; int y; return y; }").is_err());
    }

    #[test]
    fn shadowing_in_nested_scope_is_fine() {
        check_src("int f() { int y = 1; { int y = 2; y = y + 1; } return y; }").unwrap();
    }

    #[test]
    fn rejects_assignment_to_array() {
        let e = check_src("int a[3]; void f() { a = 1; }").unwrap_err();
        assert!(e.message.contains("array"));
    }
}
