//! Naive RTL code generation.
//!
//! Every emitted instruction is a single legal machine instruction of the
//! StrongARM-like target, and no optimization whatsoever is performed:
//! locals live in the activation record, every intermediate value gets a
//! fresh pseudo register, and addresses and wide constants are formed step
//! by step. The optimizer of `vpo-opt` is responsible for everything else.

use std::collections::HashMap;

use vpo_rtl::{
    BinOp, Block, Cond, Expr as R, Function, GlobalDef, Inst, Label, LocalId, Program, Reg, SymId,
    UnOp, Width,
};

use crate::ast::*;

/// Generates an RTL [`Program`] from a checked [`Unit`].
///
/// The unit must have passed [`sema::check`](crate::sema::check); code
/// generation assumes all names resolve and arities match.
pub fn generate(unit: &Unit) -> Program {
    let mut program = Program::new();
    let mut global_ids: HashMap<String, (SymId, ElemType, bool)> = HashMap::new();
    for g in &unit.globals {
        let (size, init, init_bytes) = match (&g.init, g.ty, g.array_len) {
            (GlobalInit::Str(s), _, len) => {
                let n = len.unwrap_or(s.len() + 1).max(s.len() + 1);
                let mut bytes = s.clone();
                bytes.resize(n, 0);
                (n as u32, Vec::new(), bytes)
            }
            (GlobalInit::List(v), ElemType::Char, len) => {
                let n = len.unwrap_or(v.len());
                let mut bytes: Vec<u8> = v.iter().map(|&x| x as u8).collect();
                bytes.resize(n, 0);
                (n as u32, Vec::new(), bytes)
            }
            (GlobalInit::List(v), ElemType::Int, len) => {
                let n = len.unwrap_or(v.len());
                let mut words: Vec<i32> = v.iter().map(|&x| x as i32).collect();
                words.resize(n, 0);
                ((n * 4) as u32, words, Vec::new())
            }
            (GlobalInit::Scalar(v), _, _) => (4, vec![*v as i32], Vec::new()),
            (GlobalInit::Zero, ElemType::Char, Some(n)) => (n as u32, Vec::new(), Vec::new()),
            (GlobalInit::Zero, _, Some(n)) => ((n * 4) as u32, Vec::new(), Vec::new()),
            (GlobalInit::Zero, _, None) => (4, Vec::new(), Vec::new()),
        };
        let id = program.add_global(GlobalDef { name: g.name.clone(), size, init, init_bytes });
        global_ids.insert(g.name.clone(), (id, g.ty, g.array_len.is_some()));
    }
    let fn_returns: HashMap<&str, bool> =
        unit.functions.iter().map(|f| (f.name.as_str(), f.returns_value)).collect();
    for f in &unit.functions {
        program.functions.push(gen_function(f, &global_ids, &fn_returns));
    }
    program
}

/// Where a name's storage lives and how to access it.
#[derive(Clone, Copy, Debug)]
enum Place {
    /// Scalar in a local slot.
    LocalScalar(LocalId),
    /// Array allocated in a local slot.
    LocalArray(LocalId, ElemType),
    /// Pointer (array parameter) held in a local slot.
    PtrSlot(LocalId, ElemType),
    /// Global scalar.
    GlobalScalar(SymId),
    /// Global array.
    GlobalArray(SymId, ElemType),
}

struct Emitter<'a> {
    f: Function,
    cur: usize,
    scopes: Vec<HashMap<String, Place>>,
    globals: &'a HashMap<String, (SymId, ElemType, bool)>,
    fn_returns: &'a HashMap<&'a str, bool>,
    returns_value: bool,
    /// (continue_target, break_target) stack.
    loop_stack: Vec<(Label, Label)>,
}

impl<'a> Emitter<'a> {
    fn emit(&mut self, i: Inst) {
        self.f.blocks[self.cur].insts.push(i);
    }

    fn start_block(&mut self, l: Label) {
        self.f.blocks.push(Block::new(l));
        self.cur = self.f.blocks.len() - 1;
    }

    /// Emits a conditional branch and *ends the basic block*: every
    /// conditional branch is a block terminator so that all control-flow
    /// edges leave at block boundaries (the dataflow analyses of `vpo-opt`
    /// rely on this invariant).
    fn emit_cond_branch(&mut self, cond: Cond, target: Label) {
        self.emit(Inst::CondBranch { cond, target });
        let cont = self.label();
        self.start_block(cont);
    }

    fn reg(&mut self) -> Reg {
        self.f.new_pseudo()
    }

    fn label(&mut self) -> Label {
        self.f.new_label()
    }

    fn lookup(&self, name: &str) -> Place {
        for s in self.scopes.iter().rev() {
            if let Some(&p) = s.get(name) {
                return p;
            }
        }
        let (id, ty, is_array) = self.globals[name];
        if is_array {
            Place::GlobalArray(id, ty)
        } else {
            Place::GlobalScalar(id)
        }
    }

    /// Materializes a 32-bit constant into a fresh register, building wide
    /// values bytewise (`MOV` + up to three `ORR`s, each a legal rotated
    /// immediate).
    fn const_reg(&mut self, v: i64) -> Reg {
        let t = self.reg();
        let bits = v as i32 as u32;
        if legal_imm(bits as i64) || legal_imm(v) {
            self.emit(Inst::Assign { dst: t, src: R::Const(v as i32 as i64) });
            return t;
        }
        let chunks: Vec<u32> =
            (0..4).map(|k| bits & (0xFFu32 << (8 * k))).filter(|&c| c != 0).collect();
        let mut first = true;
        for c in chunks {
            if first {
                self.emit(Inst::Assign { dst: t, src: R::Const(c as i64) });
                first = false;
            } else {
                self.emit(Inst::Assign {
                    dst: t,
                    src: R::bin(BinOp::Or, R::Reg(t), R::Const(c as i64)),
                });
            }
        }
        if first {
            self.emit(Inst::Assign { dst: t, src: R::Const(0) });
        }
        t
    }

    /// Loads the address of a global into a register (`HI`/`LO` pair).
    fn global_addr(&mut self, sym: SymId) -> Reg {
        let t = self.reg();
        self.emit(Inst::Assign { dst: t, src: R::Hi(sym) });
        self.emit(Inst::Assign { dst: t, src: R::bin(BinOp::Add, R::Reg(t), R::Lo(sym)) });
        t
    }

    /// Loads the address of a local slot into a register.
    fn local_addr(&mut self, slot: LocalId) -> Reg {
        let t = self.reg();
        self.emit(Inst::Assign { dst: t, src: R::LocalAddr(slot) });
        t
    }

    /// Computes the address (and element width) of an lvalue.
    fn lvalue_addr(&mut self, e: &Expr) -> (Reg, Width) {
        match e {
            Expr::Var(name, _) => match self.lookup(name) {
                Place::LocalScalar(slot) => (self.local_addr(slot), Width::Word),
                Place::GlobalScalar(sym) => (self.global_addr(sym), Width::Word),
                other => panic!("assignment to array {other:?} rejected by sema"),
            },
            Expr::Index { base, index, .. } => self.element_addr(base, index),
            _ => panic!("invalid lvalue survived sema"),
        }
    }

    /// Computes `&base[index]` naively.
    fn element_addr(&mut self, base: &str, index: &Expr) -> (Reg, Width) {
        let (base_reg, ty) = match self.lookup(base) {
            Place::LocalArray(slot, ty) => (self.local_addr(slot), ty),
            Place::GlobalArray(sym, ty) => (self.global_addr(sym), ty),
            Place::PtrSlot(slot, ty) => {
                // Load the pointer value from its slot.
                let a = self.local_addr(slot);
                let p = self.reg();
                self.emit(Inst::Assign { dst: p, src: R::load(Width::Word, R::Reg(a)) });
                (p, ty)
            }
            other => panic!("indexing non-array {other:?} survived sema"),
        };
        let idx = self.expr(index);
        let offset = match ty {
            ElemType::Char => idx,
            ElemType::Int => {
                let four = self.const_reg(4);
                let off = self.reg();
                self.emit(Inst::Assign {
                    dst: off,
                    src: R::bin(BinOp::Mul, R::Reg(idx), R::Reg(four)),
                });
                off
            }
        };
        let addr = self.reg();
        self.emit(Inst::Assign {
            dst: addr,
            src: R::bin(BinOp::Add, R::Reg(base_reg), R::Reg(offset)),
        });
        let width = match ty {
            ElemType::Char => Width::Byte,
            ElemType::Int => Width::Word,
        };
        (addr, width)
    }

    /// Generates code computing `e` into a fresh register.
    fn expr(&mut self, e: &Expr) -> Reg {
        match e {
            Expr::Int(v, _) => self.const_reg(*v),
            Expr::Var(name, _) => match self.lookup(name) {
                Place::LocalScalar(slot) => {
                    let a = self.local_addr(slot);
                    let t = self.reg();
                    self.emit(Inst::Assign { dst: t, src: R::load(Width::Word, R::Reg(a)) });
                    t
                }
                Place::GlobalScalar(sym) => {
                    let a = self.global_addr(sym);
                    let t = self.reg();
                    self.emit(Inst::Assign { dst: t, src: R::load(Width::Word, R::Reg(a)) });
                    t
                }
                // An array name used as a value decays to its address.
                Place::LocalArray(slot, _) => self.local_addr(slot),
                Place::GlobalArray(sym, _) => self.global_addr(sym),
                Place::PtrSlot(slot, _) => {
                    let a = self.local_addr(slot);
                    let t = self.reg();
                    self.emit(Inst::Assign { dst: t, src: R::load(Width::Word, R::Reg(a)) });
                    t
                }
            },
            Expr::Index { base, index, .. } => {
                let (addr, width) = self.element_addr(base, index);
                let t = self.reg();
                self.emit(Inst::Assign { dst: t, src: R::load(width, R::Reg(addr)) });
                t
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let a = self.expr(lhs);
                let b = self.expr(rhs);
                let t = self.reg();
                let op = match op {
                    BinaryOp::Add => BinOp::Add,
                    BinaryOp::Sub => BinOp::Sub,
                    BinaryOp::Mul => BinOp::Mul,
                    BinaryOp::Div => BinOp::Div,
                    BinaryOp::Rem => BinOp::Rem,
                    BinaryOp::And => BinOp::And,
                    BinaryOp::Or => BinOp::Or,
                    BinaryOp::Xor => BinOp::Xor,
                    BinaryOp::Shl => BinOp::Shl,
                    BinaryOp::Shr => BinOp::AShr,
                    BinaryOp::Ushr => BinOp::LShr,
                };
                self.emit(Inst::Assign { dst: t, src: R::bin(op, R::Reg(a), R::Reg(b)) });
                t
            }
            Expr::Neg(a, _) => {
                let r = self.expr(a);
                let t = self.reg();
                self.emit(Inst::Assign { dst: t, src: R::un(UnOp::Neg, R::Reg(r)) });
                t
            }
            Expr::Not(a, _) => {
                let r = self.expr(a);
                let t = self.reg();
                self.emit(Inst::Assign { dst: t, src: R::un(UnOp::Not, R::Reg(r)) });
                t
            }
            Expr::Cmp { .. } | Expr::Logical { .. } | Expr::LogicalNot(..) => {
                // Materialize a boolean: t=1; if cond goto done; t=0; done:
                let t = self.reg();
                self.emit(Inst::Assign { dst: t, src: R::Const(1) });
                let done = self.label();
                self.branch_cond(e, done, true);
                self.emit(Inst::Assign { dst: t, src: R::Const(0) });
                self.start_block(done);
                t
            }
            Expr::Assign { target, value, .. } => {
                let v = self.expr(value);
                let (addr, width) = self.lvalue_addr(target);
                self.emit(Inst::Store { width, addr: R::Reg(addr), src: R::Reg(v) });
                v
            }
            Expr::Call { callee, args, .. } => {
                let arg_regs: Vec<R> = args.iter().map(|a| R::Reg(self.expr(a))).collect();
                let returns = self.fn_returns.get(callee.as_str()).copied().unwrap_or(true);
                let dst = if returns { Some(self.reg()) } else { None };
                self.emit(Inst::Call { callee: callee.clone(), args: arg_regs, dst });
                dst.unwrap_or_else(|| {
                    // A void call used as a value would be a sema bug; any
                    // placeholder register works for statement position.
                    Reg::pseudo(0)
                })
            }
        }
    }

    /// Emits a branch to `target` taken iff `e` evaluates truthy
    /// (`when_true`) or falsy (`!when_true`). Always falls through
    /// otherwise; may start new blocks for short-circuit arms.
    fn branch_cond(&mut self, e: &Expr, target: Label, when_true: bool) {
        match e {
            Expr::Cmp { op, lhs, rhs, .. } => {
                let a = self.expr(lhs);
                let b = self.expr(rhs);
                let cond = match op {
                    CmpOp::Eq => Cond::Eq,
                    CmpOp::Ne => Cond::Ne,
                    CmpOp::Lt => Cond::Lt,
                    CmpOp::Le => Cond::Le,
                    CmpOp::Gt => Cond::Gt,
                    CmpOp::Ge => Cond::Ge,
                };
                let cond = if when_true { cond } else { cond.negate() };
                self.emit(Inst::Compare { lhs: R::Reg(a), rhs: R::Reg(b) });
                self.emit_cond_branch(cond, target);
            }
            Expr::Logical { is_and, lhs, rhs, .. } => {
                match (is_and, when_true) {
                    (true, true) => {
                        // (a && b) true → target: if !a skip, if b goto.
                        let skip = self.label();
                        self.branch_cond(lhs, skip, false);
                        self.branch_cond(rhs, target, true);
                        self.start_block(skip);
                    }
                    (true, false) => {
                        // (a && b) false → target.
                        self.branch_cond(lhs, target, false);
                        self.branch_cond(rhs, target, false);
                    }
                    (false, true) => {
                        self.branch_cond(lhs, target, true);
                        self.branch_cond(rhs, target, true);
                    }
                    (false, false) => {
                        let skip = self.label();
                        self.branch_cond(lhs, skip, true);
                        self.branch_cond(rhs, target, false);
                        self.start_block(skip);
                    }
                }
            }
            Expr::LogicalNot(inner, _) => self.branch_cond(inner, target, !when_true),
            _ => {
                let r = self.expr(e);
                let zero = self.const_reg(0);
                self.emit(Inst::Compare { lhs: R::Reg(r), rhs: R::Reg(zero) });
                let cond = if when_true { Cond::Ne } else { Cond::Eq };
                self.emit_cond_branch(cond, target);
            }
        }
    }

    fn stmts(&mut self, body: &[Stmt]) {
        self.scopes.push(HashMap::new());
        for s in body {
            self.stmt(s);
        }
        self.scopes.pop();
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl { name, ty, array_len, init, .. } => {
                let place = match array_len {
                    Some(n) => {
                        let bytes = match ty {
                            ElemType::Char => *n as u32,
                            ElemType::Int => (*n * 4) as u32,
                        };
                        let slot = self.f.new_local(name.clone(), bytes.max(1));
                        Place::LocalArray(slot, *ty)
                    }
                    None => {
                        let slot = self.f.new_local(name.clone(), 4);
                        Place::LocalScalar(slot)
                    }
                };
                self.scopes.last_mut().unwrap().insert(name.clone(), place);
                if let Some(e) = init {
                    let v = self.expr(e);
                    if let Place::LocalScalar(slot) = place {
                        let a = self.local_addr(slot);
                        self.emit(Inst::Store {
                            width: Width::Word,
                            addr: R::Reg(a),
                            src: R::Reg(v),
                        });
                    }
                }
            }
            Stmt::Expr(e) => {
                let _ = self.expr(e);
            }
            Stmt::If { cond, then, els } => {
                if els.is_empty() {
                    let end = self.label();
                    self.branch_cond(cond, end, false);
                    self.stmts(then);
                    self.start_block(end);
                } else {
                    let else_l = self.label();
                    let end = self.label();
                    self.branch_cond(cond, else_l, false);
                    self.stmts(then);
                    self.emit(Inst::Jump { target: end });
                    self.start_block(else_l);
                    self.stmts(els);
                    self.start_block(end);
                }
            }
            Stmt::While { cond, body } => {
                let header = self.label();
                let exit = self.label();
                self.start_block(header);
                self.branch_cond(cond, exit, false);
                self.loop_stack.push((header, exit));
                self.stmts(body);
                self.loop_stack.pop();
                self.emit(Inst::Jump { target: header });
                self.start_block(exit);
            }
            Stmt::DoWhile { body, cond } => {
                let top = self.label();
                let check = self.label();
                let exit = self.label();
                self.start_block(top);
                self.loop_stack.push((check, exit));
                self.stmts(body);
                self.loop_stack.pop();
                self.start_block(check);
                self.branch_cond(cond, top, true);
                self.start_block(exit);
            }
            Stmt::For { init, cond, step, body } => {
                if let Some(e) = init {
                    let _ = self.expr(e);
                }
                let header = self.label();
                let step_l = self.label();
                let exit = self.label();
                self.start_block(header);
                if let Some(c) = cond {
                    self.branch_cond(c, exit, false);
                }
                self.loop_stack.push((step_l, exit));
                self.stmts(body);
                self.loop_stack.pop();
                self.start_block(step_l);
                if let Some(e) = step {
                    let _ = self.expr(e);
                }
                self.emit(Inst::Jump { target: header });
                self.start_block(exit);
            }
            Stmt::Return(v) => {
                let value = match (v, self.returns_value) {
                    (Some(e), _) => {
                        let r = self.expr(e);
                        Some(R::Reg(r))
                    }
                    (None, true) => Some(R::Const(0)),
                    (None, false) => None,
                };
                self.emit(Inst::Return { value });
                // Anything that follows in this source block is unreachable;
                // give it its own (unreferenced) block.
                let after = self.label();
                self.start_block(after);
            }
            Stmt::Break(_) => {
                let (_, brk) = *self.loop_stack.last().expect("checked by sema");
                self.emit(Inst::Jump { target: brk });
                let after = self.label();
                self.start_block(after);
            }
            Stmt::Continue(_) => {
                let (cont, _) = *self.loop_stack.last().expect("checked by sema");
                self.emit(Inst::Jump { target: cont });
                let after = self.label();
                self.start_block(after);
            }
            Stmt::Block(inner) => self.stmts(inner),
        }
    }
}

fn gen_function(
    decl: &FunctionDecl,
    globals: &HashMap<String, (SymId, ElemType, bool)>,
    fn_returns: &HashMap<&str, bool>,
) -> Function {
    let mut e = Emitter {
        f: Function::new(decl.name.clone()),
        cur: 0,
        scopes: vec![HashMap::new()],
        globals,
        fn_returns,
        returns_value: decl.returns_value,
        loop_stack: Vec::new(),
    };
    // Parameters: arrive in registers, stored to slots like any local.
    for p in &decl.params {
        let preg = e.f.new_pseudo();
        e.f.params.push(preg);
        let slot = e.f.new_local(p.name.clone(), 4);
        let place = if p.is_array { Place::PtrSlot(slot, p.ty) } else { Place::LocalScalar(slot) };
        e.scopes[0].insert(p.name.clone(), place);
        let a = e.local_addr(slot);
        e.emit(Inst::Store { width: Width::Word, addr: R::Reg(a), src: R::Reg(preg) });
    }
    e.stmts(&decl.body);
    let mut f = e.f;
    // Remove the empty blocks that branch targets, `return` and `break`
    // leave behind: an empty block simply falls through, so references to
    // its label are redirected to the next block. A trailing empty block is
    // dropped once unreferenced.
    while let Some(i) = f.blocks.iter().position(|b| b.insts.is_empty()) {
        if i + 1 < f.blocks.len() {
            let dead = f.blocks[i].label;
            let succ = f.blocks[i + 1].label;
            f.blocks.remove(i);
            for b in &mut f.blocks {
                for inst in &mut b.insts {
                    inst.retarget(|t| if t == dead { succ } else { t });
                }
            }
        } else {
            let label = f.blocks[i].label;
            let referenced = f.iter_insts().any(|(_, _, inst)| inst.target() == Some(label));
            if referenced || f.blocks.len() == 1 {
                break;
            }
            f.blocks.pop();
        }
    }
    // Guarantee a terminator.
    if f.blocks.last().map(|b| b.falls_through()).unwrap_or(true) {
        let value = if decl.returns_value { Some(R::Const(0)) } else { None };
        f.blocks.last_mut().unwrap().insts.push(Inst::Return { value });
    }
    f.recompute_addr_taken();
    f
}

/// Local copy of the ARM rotated-immediate test (the front end must not
/// depend on `vpo-opt`, which would be a dependency cycle).
fn legal_imm(c: i64) -> bool {
    if !(i32::MIN as i64..=u32::MAX as i64).contains(&c) {
        return false;
    }
    let v = c as u32;
    let rot = |x: u32| (0..32).step_by(2).any(|r| x.rotate_left(r) & !0xFF == 0);
    rot(v) || rot(!v) || rot(v.wrapping_neg())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn straightline_codegen() {
        let p = compile("int f(int a, int b) { return a + b; }").unwrap();
        let f = &p.functions[0];
        assert_eq!(f.params.len(), 2);
        // param stores (2×2) + two loads (2×2) + add + ret = 10.
        assert_eq!(f.inst_count(), 10);
    }

    #[test]
    fn wide_constants_are_built_bytewise() {
        let p = compile("int f() { return 305419896; }").unwrap(); // 0x12345678
        let f = &p.functions[0];
        // MOV + 3 ORRs + RET.
        assert_eq!(f.inst_count(), 5);
    }

    #[test]
    fn loops_have_expected_shape() {
        let p = compile(
            "int sum(int a[], int n) { int s = 0; int i; for (i = 0; i < n; i++) s += a[i]; return s; }",
        )
        .unwrap();
        let f = &p.functions[0];
        let cfg = vpo_rtl::cfg::Cfg::build(f);
        assert_eq!(vpo_rtl::loops::loop_count(&cfg), 1);
    }

    #[test]
    fn char_arrays_use_byte_accesses() {
        let p = compile("char buf[16]; int first() { return buf[0]; }").unwrap();
        let f = &p.functions[0];
        let has_byte_load = f.iter_insts().any(|(_, _, i)| {
            let mut found = false;
            i.visit_exprs(&mut |e| {
                e.visit(&mut |x| {
                    if matches!(x, R::Load(Width::Byte, _)) {
                        found = true;
                    }
                });
            });
            found
        });
        assert!(has_byte_load);
    }

    #[test]
    fn short_circuit_generates_branches() {
        let p = compile("int f(int a, int b) { if (a > 0 && b > 0) return 1; return 0; }").unwrap();
        let f = &p.functions[0];
        assert!(f.branch_count() >= 2);
    }

    #[test]
    fn global_initializers() {
        let p = compile(
            r#"
            int words[3] = { 10, 20, 30 };
            char text[] = "ab";
            int counter = 5;
            int zero[4];
            int f() { return counter; }
        "#,
        )
        .unwrap();
        assert_eq!(p.globals.len(), 4);
        assert_eq!(p.globals[0].init, vec![10, 20, 30]);
        assert_eq!(p.globals[1].init_bytes, vec![b'a', b'b', 0]);
        assert_eq!(p.globals[1].size, 3);
        assert_eq!(p.globals[2].init, vec![5]);
        assert_eq!(p.globals[3].size, 16);
    }

    #[test]
    fn break_and_continue_target_correct_labels() {
        let p = compile(
            r#"
            int f(int n) {
                int s = 0;
                int i;
                for (i = 0; i < n; i++) {
                    if (i == 3) continue;
                    if (i == 7) break;
                    s += i;
                }
                return s;
            }
        "#,
        )
        .unwrap();
        let f = &p.functions[0];
        // All branch targets must resolve to blocks.
        let cfg = vpo_rtl::cfg::Cfg::build(f);
        assert!(cfg.len() > 4);
    }

    #[test]
    fn every_generated_instruction_is_atomic() {
        // The naive generator only emits single-operator RTLs; expression
        // trees deeper than one operator never appear.
        let p = compile("int f(int a, int b, int c) { return (a + b * c) / (a - 1 + (b ^ c)); }")
            .unwrap();
        for (_, _, inst) in p.functions[0].iter_insts() {
            inst.visit_exprs(&mut |e| {
                let depth_ok = match e {
                    R::Bin(_, a, b) => {
                        matches!(**a, R::Reg(_) | R::Const(_) | R::Hi(_) | R::LocalAddr(_))
                            && matches!(**b, R::Reg(_) | R::Const(_) | R::Lo(_))
                    }
                    R::Load(_, a) => matches!(**a, R::Reg(_)),
                    R::Un(_, a) => matches!(**a, R::Reg(_)),
                    _ => true,
                };
                assert!(depth_ok, "non-atomic RTL emitted: {e:?}");
            });
        }
    }
}
