//! MiniC — the front end of the VPO-style compiler.
//!
//! MiniC is the C subset in which the MiBench benchmark kernels of the
//! `mibench` crate are written: `int`/`char` scalars, arrays, array
//! parameters, the usual expression operators with C precedence
//! (including short-circuit `&&`/`||`), `if`/`else`, `while`, `for`,
//! `break`/`continue`, `return`, function calls, and global variables with
//! initializers (including string initializers for `char` arrays).
//!
//! Code generation is deliberately **naive**: every local variable lives
//! in the activation record, every intermediate value gets a fresh pseudo
//! register, addresses are formed in single steps, and constants that do
//! not fit an ARM rotated immediate are built bytewise. Every emitted RTL
//! is a single legal machine instruction, and *all* optimization is left
//! to the fifteen phases of `vpo-opt` — that is precisely what gives the
//! phase-order search space its shape.
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     int square(int x) { return x * x; }
//! "#;
//! let program = vpo_frontend::compile(src)?;
//! assert_eq!(program.functions.len(), 1);
//! assert_eq!(program.functions[0].name, "square");
//! # Ok::<(), vpo_frontend::CompileError>(())
//! ```

pub mod ast;
pub mod codegen;
pub mod fuzz;
pub mod lexer;
pub mod parser;
pub mod sema;

use vpo_rtl::Program;

/// A front-end diagnostic: lexical, syntactic, or semantic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line the error was detected on.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    pub(crate) fn new(line: u32, message: impl Into<String>) -> Self {
        CompileError { line, message: message.into() }
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Compiles a MiniC translation unit into an RTL [`Program`].
///
/// # Errors
///
/// Returns the first [`CompileError`] encountered during lexing, parsing,
/// or semantic analysis.
pub fn compile(source: &str) -> Result<Program, CompileError> {
    let tokens = lexer::lex(source)?;
    let unit = parser::parse(&tokens)?;
    sema::check(&unit)?;
    Ok(codegen::generate(&unit))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_compile() {
        let p = compile("int f(int a, int b) { return a + b * 2; }").unwrap();
        assert_eq!(p.functions.len(), 1);
        assert!(p.functions[0].inst_count() > 3);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = compile("int f() {\n  return x;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains('x'));
    }
}
