//! Recursive-descent parser for MiniC, with standard C operator
//! precedence.

use crate::ast::*;
use crate::lexer::{Kw, Punct, Token, TokenKind};
use crate::CompileError;

/// Parses a token stream into a [`Unit`].
///
/// # Errors
///
/// Returns the first syntax error encountered.
pub fn parse(tokens: &[Token]) -> Result<Unit, CompileError> {
    let mut p = Parser { tokens, pos: 0 };
    p.unit()
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> &TokenKind {
        let k = &self.tokens[self.pos].kind;
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if *self.peek() == TokenKind::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), CompileError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.error(format!("expected {p:?}, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, CompileError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn error(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(self.line(), msg)
    }

    fn elem_type(&mut self) -> Result<ElemType, CompileError> {
        let line = self.line();
        match self.bump().clone() {
            TokenKind::Kw(Kw::Int) => Ok(ElemType::Int),
            TokenKind::Kw(Kw::Char) => Ok(ElemType::Char),
            other => Err(CompileError::new(line, format!("expected type, found {other:?}"))),
        }
    }

    fn unit(&mut self) -> Result<Unit, CompileError> {
        let mut unit = Unit::default();
        while *self.peek() != TokenKind::Eof {
            let line = self.line();
            // Lookahead: type ident '(' → function, else global.
            let returns_value = match self.peek() {
                TokenKind::Kw(Kw::Void) => {
                    self.bump();
                    false
                }
                TokenKind::Kw(Kw::Int) | TokenKind::Kw(Kw::Char) => true,
                other => return Err(self.error(format!("expected declaration, found {other:?}"))),
            };
            let ty = if returns_value { self.elem_type()? } else { ElemType::Int };
            let name = self.expect_ident()?;
            if *self.peek() == TokenKind::Punct(Punct::LParen) {
                unit.functions.push(self.function(name, returns_value, line)?);
            } else {
                unit.globals.push(self.global(name, ty, line)?);
            }
        }
        Ok(unit)
    }

    fn global(
        &mut self,
        name: String,
        ty: ElemType,
        line: u32,
    ) -> Result<GlobalDecl, CompileError> {
        let mut array_len = None;
        if self.eat_punct(Punct::LBracket) {
            if let TokenKind::Int(n) = self.peek().clone() {
                self.bump();
                array_len = Some(n as usize);
            }
            // `[]` with a string or list initializer infers the length.
            self.expect_punct(Punct::RBracket)?;
            if array_len.is_none() && *self.peek() != TokenKind::Punct(Punct::Assign) {
                return Err(self.error("unsized global array needs an initializer"));
            }
            if array_len == Some(0) {
                array_len = None; // will be inferred
            }
        }
        let mut init = GlobalInit::Zero;
        if self.eat_punct(Punct::Assign) {
            init = match self.peek().clone() {
                TokenKind::Str(s) => {
                    self.bump();
                    GlobalInit::Str(s)
                }
                TokenKind::Punct(Punct::LBrace) => {
                    self.bump();
                    let mut vals = Vec::new();
                    loop {
                        vals.push(self.const_int()?);
                        if !self.eat_punct(Punct::Comma) {
                            break;
                        }
                    }
                    self.expect_punct(Punct::RBrace)?;
                    GlobalInit::List(vals)
                }
                _ => GlobalInit::Scalar(self.const_int()?),
            };
        }
        self.expect_punct(Punct::Semi)?;
        // Infer length for `x[] = ...`.
        let was_array =
            array_len.is_some() || matches!(init, GlobalInit::List(_) | GlobalInit::Str(_));
        let array_len = match (&init, array_len) {
            (_, Some(n)) => Some(n),
            (GlobalInit::List(v), None) if was_array => Some(v.len()),
            (GlobalInit::Str(s), None) if was_array => Some(s.len() + 1),
            _ => None,
        };
        Ok(GlobalDecl { name, ty, array_len, init, line })
    }

    fn const_int(&mut self) -> Result<i64, CompileError> {
        let neg = self.eat_punct(Punct::Minus);
        match self.bump().clone() {
            TokenKind::Int(v) => Ok(if neg { -v } else { v }),
            other => Err(self.error(format!("expected constant, found {other:?}"))),
        }
    }

    fn function(
        &mut self,
        name: String,
        returns_value: bool,
        line: u32,
    ) -> Result<FunctionDecl, CompileError> {
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            if *self.peek() == TokenKind::Kw(Kw::Void)
                && *self.peek2() == TokenKind::Punct(Punct::RParen)
            {
                self.bump();
            } else {
                loop {
                    let ty = self.elem_type()?;
                    let is_ptr = self.eat_punct(Punct::Star);
                    let pname = self.expect_ident()?;
                    let mut is_array = is_ptr;
                    if self.eat_punct(Punct::LBracket) {
                        self.expect_punct(Punct::RBracket)?;
                        is_array = true;
                    }
                    params.push(Param { name: pname, ty, is_array });
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
            }
            self.expect_punct(Punct::RParen)?;
        }
        self.expect_punct(Punct::LBrace)?;
        let body = self.block_body()?;
        Ok(FunctionDecl { name, returns_value, params, body, line })
    }

    /// Parses statements until the matching `}` (which is consumed).
    fn block_body(&mut self) -> Result<Vec<Stmt>, CompileError> {
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if *self.peek() == TokenKind::Eof {
                return Err(self.error("unexpected end of input in block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::Kw(Kw::Int) | TokenKind::Kw(Kw::Char) => {
                let ty = self.elem_type()?;
                let name = self.expect_ident()?;
                let mut array_len = None;
                if self.eat_punct(Punct::LBracket) {
                    match self.bump().clone() {
                        TokenKind::Int(n) => array_len = Some(n as usize),
                        other => {
                            return Err(self.error(format!(
                                "local array length must be a constant, found {other:?}"
                            )))
                        }
                    }
                    self.expect_punct(Punct::RBracket)?;
                }
                let init = if self.eat_punct(Punct::Assign) { Some(self.expr()?) } else { None };
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Decl { name, ty, array_len, init, line })
            }
            TokenKind::Kw(Kw::If) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let then = self.stmt_as_block()?;
                let els = if *self.peek() == TokenKind::Kw(Kw::Else) {
                    self.bump();
                    self.stmt_as_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then, els })
            }
            TokenKind::Kw(Kw::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = self.stmt_as_block()?;
                Ok(Stmt::While { cond, body })
            }
            TokenKind::Kw(Kw::Do) => {
                self.bump();
                let body = self.stmt_as_block()?;
                if *self.peek() != TokenKind::Kw(Kw::While) {
                    return Err(self.error("expected `while` after do-body"));
                }
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::DoWhile { body, cond })
            }
            TokenKind::Kw(Kw::For) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let init = if *self.peek() == TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                let cond = if *self.peek() == TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                let step = if *self.peek() == TokenKind::Punct(Punct::RParen) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::RParen)?;
                let body = self.stmt_as_block()?;
                Ok(Stmt::For { init, cond, step, body })
            }
            TokenKind::Kw(Kw::Return) => {
                self.bump();
                let value = if *self.peek() == TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Return(value))
            }
            TokenKind::Kw(Kw::Break) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Break(line))
            }
            TokenKind::Kw(Kw::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Continue(line))
            }
            TokenKind::Punct(Punct::LBrace) => {
                self.bump();
                Ok(Stmt::Block(self.block_body()?))
            }
            TokenKind::Punct(Punct::Semi) => {
                self.bump();
                Ok(Stmt::Block(Vec::new()))
            }
            _ => {
                let e = self.expr()?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn stmt_as_block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        if self.eat_punct(Punct::LBrace) {
            self.block_body()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    // ---- expressions, lowest precedence first ----

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.logical_or()?;
        let line = self.line();
        let compound = |op: BinaryOp| Some(op);
        let op = match self.peek() {
            TokenKind::Punct(Punct::Assign) => None,
            TokenKind::Punct(Punct::PlusEq) => compound(BinaryOp::Add),
            TokenKind::Punct(Punct::MinusEq) => compound(BinaryOp::Sub),
            TokenKind::Punct(Punct::StarEq) => compound(BinaryOp::Mul),
            TokenKind::Punct(Punct::SlashEq) => compound(BinaryOp::Div),
            TokenKind::Punct(Punct::PercentEq) => compound(BinaryOp::Rem),
            TokenKind::Punct(Punct::AmpEq) => compound(BinaryOp::And),
            TokenKind::Punct(Punct::PipeEq) => compound(BinaryOp::Or),
            TokenKind::Punct(Punct::CaretEq) => compound(BinaryOp::Xor),
            TokenKind::Punct(Punct::ShlEq) => compound(BinaryOp::Shl),
            TokenKind::Punct(Punct::ShrEq) => compound(BinaryOp::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.assignment()?;
        let value = match op {
            None => rhs,
            Some(op) => Expr::Binary { op, lhs: Box::new(lhs.clone()), rhs: Box::new(rhs), line },
        };
        Ok(Expr::Assign { target: Box::new(lhs), value: Box::new(value), line })
    }

    fn logical_or(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.logical_and()?;
        while *self.peek() == TokenKind::Punct(Punct::OrOr) {
            let line = self.line();
            self.bump();
            let rhs = self.logical_and()?;
            e = Expr::Logical { is_and: false, lhs: Box::new(e), rhs: Box::new(rhs), line };
        }
        Ok(e)
    }

    fn logical_and(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.bit_or()?;
        while *self.peek() == TokenKind::Punct(Punct::AndAnd) {
            let line = self.line();
            self.bump();
            let rhs = self.bit_or()?;
            e = Expr::Logical { is_and: true, lhs: Box::new(e), rhs: Box::new(rhs), line };
        }
        Ok(e)
    }

    fn bit_or(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[(Punct::Pipe, BinaryOp::Or)], Self::bit_xor)
    }

    fn bit_xor(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[(Punct::Caret, BinaryOp::Xor)], Self::bit_and)
    }

    fn bit_and(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[(Punct::Amp, BinaryOp::And)], Self::equality)
    }

    fn equality(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.relational()?;
        loop {
            let op = match self.peek() {
                TokenKind::Punct(Punct::EqEq) => CmpOp::Eq,
                TokenKind::Punct(Punct::Ne) => CmpOp::Ne,
                _ => return Ok(e),
            };
            let line = self.line();
            self.bump();
            let rhs = self.relational()?;
            e = Expr::Cmp { op, lhs: Box::new(e), rhs: Box::new(rhs), line };
        }
    }

    fn relational(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.shift()?;
        loop {
            let op = match self.peek() {
                TokenKind::Punct(Punct::Lt) => CmpOp::Lt,
                TokenKind::Punct(Punct::Le) => CmpOp::Le,
                TokenKind::Punct(Punct::Gt) => CmpOp::Gt,
                TokenKind::Punct(Punct::Ge) => CmpOp::Ge,
                _ => return Ok(e),
            };
            let line = self.line();
            self.bump();
            let rhs = self.shift()?;
            e = Expr::Cmp { op, lhs: Box::new(e), rhs: Box::new(rhs), line };
        }
    }

    fn shift(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            &[
                (Punct::Shl, BinaryOp::Shl),
                (Punct::Shr, BinaryOp::Shr),
                (Punct::Shr3, BinaryOp::Ushr),
            ],
            Self::additive,
        )
    }

    fn additive(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            &[(Punct::Plus, BinaryOp::Add), (Punct::Minus, BinaryOp::Sub)],
            Self::multiplicative,
        )
    }

    fn multiplicative(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            &[
                (Punct::Star, BinaryOp::Mul),
                (Punct::Slash, BinaryOp::Div),
                (Punct::Percent, BinaryOp::Rem),
            ],
            Self::unary,
        )
    }

    fn binary_level(
        &mut self,
        table: &[(Punct, BinaryOp)],
        next: fn(&mut Self) -> Result<Expr, CompileError>,
    ) -> Result<Expr, CompileError> {
        let mut e = next(self)?;
        'outer: loop {
            for &(p, op) in table {
                if *self.peek() == TokenKind::Punct(p) {
                    let line = self.line();
                    self.bump();
                    let rhs = next(self)?;
                    e = Expr::Binary { op, lhs: Box::new(e), rhs: Box::new(rhs), line };
                    continue 'outer;
                }
            }
            return Ok(e);
        }
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.peek() {
            TokenKind::Punct(Punct::Minus) => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.unary()?), line))
            }
            TokenKind::Punct(Punct::Tilde) => {
                self.bump();
                Ok(Expr::Not(Box::new(self.unary()?), line))
            }
            TokenKind::Punct(Punct::Bang) => {
                self.bump();
                Ok(Expr::LogicalNot(Box::new(self.unary()?), line))
            }
            TokenKind::Punct(Punct::PlusPlus) | TokenKind::Punct(Punct::MinusMinus) => {
                let inc = *self.peek() == TokenKind::Punct(Punct::PlusPlus);
                self.bump();
                let target = self.unary()?;
                Ok(desugar_incdec(target, inc, line))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            match self.peek() {
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    let base = match e {
                        Expr::Var(name, _) => name,
                        _ => return Err(self.error("only named arrays can be indexed")),
                    };
                    e = Expr::Index { base, index: Box::new(idx), line };
                }
                TokenKind::Punct(Punct::PlusPlus) | TokenKind::Punct(Punct::MinusMinus) => {
                    // Post-increment as a statement-level operation: MiniC
                    // treats `x++` as `x = x + 1` with the *new* value; the
                    // benchmark sources only use it for effect.
                    let inc = *self.peek() == TokenKind::Punct(Punct::PlusPlus);
                    self.bump();
                    e = desugar_incdec(e, inc, line);
                }
                TokenKind::Punct(Punct::LParen) => {
                    self.bump();
                    let callee = match e {
                        Expr::Var(name, _) => name,
                        _ => return Err(self.error("calls must target a named function")),
                    };
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                        self.expect_punct(Punct::RParen)?;
                    }
                    e = Expr::Call { callee, args, line };
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v, line))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::Var(name, line))
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }
}

/// Desugars `++x`/`x++` into `x = x ± 1` (value semantics of the *new*
/// value; the benchmarks use the operators only for effect).
fn desugar_incdec(target: Expr, inc: bool, line: u32) -> Expr {
    let op = if inc { BinaryOp::Add } else { BinaryOp::Sub };
    Expr::Assign {
        target: Box::new(target.clone()),
        value: Box::new(Expr::Binary {
            op,
            lhs: Box::new(target),
            rhs: Box::new(Expr::Int(1, line)),
            line,
        }),
        line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Unit {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_function_with_control_flow() {
        let u = parse_src(
            r#"
            int gcd(int a, int b) {
                while (b != 0) {
                    int t = b;
                    b = a % b;
                    a = t;
                }
                return a;
            }
        "#,
        );
        assert_eq!(u.functions.len(), 1);
        assert_eq!(u.functions[0].params.len(), 2);
        assert!(matches!(u.functions[0].body[0], Stmt::While { .. }));
    }

    #[test]
    fn parses_globals_with_initializers() {
        let u = parse_src(
            r#"
            int table[4] = { 1, 2, 3, 4 };
            int scalar = -7;
            char text[] = "hey";
            int zeroed[10];
        "#,
        );
        assert_eq!(u.globals.len(), 4);
        assert_eq!(u.globals[0].array_len, Some(4));
        assert!(matches!(u.globals[1].init, GlobalInit::Scalar(-7)));
        // "hey" + NUL
        assert_eq!(u.globals[2].array_len, Some(4));
        assert_eq!(u.globals[3].array_len, Some(10));
    }

    #[test]
    fn precedence_mul_before_add() {
        let u = parse_src("int f() { return 1 + 2 * 3; }");
        let Stmt::Return(Some(Expr::Binary { op: BinaryOp::Add, rhs, .. })) =
            &u.functions[0].body[0]
        else {
            panic!("expected return of addition");
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinaryOp::Mul, .. }));
    }

    #[test]
    fn parses_for_and_compound_assign() {
        let u = parse_src("void f(int n) { int s; for (s = 0; s < n; s += 2) ; }");
        assert!(matches!(u.functions[0].body[1], Stmt::For { .. }));
    }

    #[test]
    fn incdec_desugars() {
        let u = parse_src("void f(int i) { i++; --i; }");
        for s in &u.functions[0].body {
            assert!(matches!(s, Stmt::Expr(Expr::Assign { .. })));
        }
    }

    #[test]
    fn array_params() {
        let u = parse_src("int f(int a[], char *s) { return a[0] + s[1]; }");
        assert!(u.functions[0].params[0].is_array);
        assert!(u.functions[0].params[1].is_array);
        assert_eq!(u.functions[0].params[1].ty, ElemType::Char);
    }

    #[test]
    fn syntax_errors() {
        assert!(parse(&lex("int f( {").unwrap()).is_err());
        assert!(parse(&lex("int f() { return 1 + ; }").unwrap()).is_err());
        assert!(parse(&lex("int f() { if (1) }").unwrap()).is_err());
    }

    #[test]
    fn do_while() {
        let u = parse_src("void f(int i) { do { i--; } while (i > 0); }");
        assert!(matches!(u.functions[0].body[0], Stmt::DoWhile { .. }));
    }
}
