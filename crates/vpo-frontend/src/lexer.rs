//! The MiniC lexer.

use crate::CompileError;

/// A lexical token with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// Token kinds of MiniC.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier.
    Ident(String),
    /// Integer literal (decimal, hex `0x...`, or character literal).
    Int(i64),
    /// String literal (without quotes, escapes resolved).
    Str(Vec<u8>),
    /// A keyword.
    Kw(Kw),
    /// Punctuation or operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// MiniC keywords.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kw {
    Int,
    Char,
    Void,
    If,
    Else,
    While,
    For,
    Do,
    Return,
    Break,
    Continue,
}

/// MiniC punctuation and operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    Shr3,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Assign,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    ShlEq,
    ShrEq,
    PlusPlus,
    MinusMinus,
}

/// Tokenizes MiniC source.
///
/// # Errors
///
/// Returns a [`CompileError`] on unterminated literals or unexpected
/// characters.
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    macro_rules! push {
        ($kind:expr) => {
            out.push(Token { kind: $kind, line })
        };
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(CompileError::new(line, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let kind = match word {
                    "int" => TokenKind::Kw(Kw::Int),
                    "char" => TokenKind::Kw(Kw::Char),
                    "void" => TokenKind::Kw(Kw::Void),
                    "if" => TokenKind::Kw(Kw::If),
                    "else" => TokenKind::Kw(Kw::Else),
                    "while" => TokenKind::Kw(Kw::While),
                    "for" => TokenKind::Kw(Kw::For),
                    "do" => TokenKind::Kw(Kw::Do),
                    "return" => TokenKind::Kw(Kw::Return),
                    "break" => TokenKind::Kw(Kw::Break),
                    "continue" => TokenKind::Kw(Kw::Continue),
                    _ => TokenKind::Ident(word.to_owned()),
                };
                push!(kind);
            }
            '0'..='9' => {
                let start = i;
                if c == '0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X')) {
                    i += 2;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let v = i64::from_str_radix(&src[start + 2..i], 16)
                        .map_err(|_| CompileError::new(line, "bad hex literal"))?;
                    push!(TokenKind::Int(v));
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let v: i64 = src[start..i]
                        .parse()
                        .map_err(|_| CompileError::new(line, "bad integer literal"))?;
                    push!(TokenKind::Int(v));
                }
            }
            '\'' => {
                i += 1;
                let (v, consumed) = unescape(bytes, i, line)?;
                i += consumed;
                if bytes.get(i) != Some(&b'\'') {
                    return Err(CompileError::new(line, "unterminated char literal"));
                }
                i += 1;
                push!(TokenKind::Int(v as i64));
            }
            '"' => {
                i += 1;
                let mut s = Vec::new();
                while bytes.get(i) != Some(&b'"') {
                    if i >= bytes.len() {
                        return Err(CompileError::new(line, "unterminated string literal"));
                    }
                    let (v, consumed) = unescape(bytes, i, line)?;
                    s.push(v);
                    i += consumed;
                }
                i += 1;
                push!(TokenKind::Str(s));
            }
            _ => {
                let two = if i + 1 < bytes.len() { &src[i..i + 2] } else { "" };
                let (p, len) = match two {
                    ">>" if bytes.get(i + 2) == Some(&b'>') => (Punct::Shr3, 3),
                    "<<" if bytes.get(i + 2) == Some(&b'=') => (Punct::ShlEq, 3),
                    ">>" if bytes.get(i + 2) == Some(&b'=') => (Punct::ShrEq, 3),
                    "<<" => (Punct::Shl, 2),
                    ">>" => (Punct::Shr, 2),
                    "<=" => (Punct::Le, 2),
                    ">=" => (Punct::Ge, 2),
                    "==" => (Punct::EqEq, 2),
                    "!=" => (Punct::Ne, 2),
                    "&&" => (Punct::AndAnd, 2),
                    "||" => (Punct::OrOr, 2),
                    "+=" => (Punct::PlusEq, 2),
                    "-=" => (Punct::MinusEq, 2),
                    "*=" => (Punct::StarEq, 2),
                    "/=" => (Punct::SlashEq, 2),
                    "%=" => (Punct::PercentEq, 2),
                    "&=" => (Punct::AmpEq, 2),
                    "|=" => (Punct::PipeEq, 2),
                    "^=" => (Punct::CaretEq, 2),
                    "++" => (Punct::PlusPlus, 2),
                    "--" => (Punct::MinusMinus, 2),
                    _ => {
                        let p = match c {
                            '(' => Punct::LParen,
                            ')' => Punct::RParen,
                            '{' => Punct::LBrace,
                            '}' => Punct::RBrace,
                            '[' => Punct::LBracket,
                            ']' => Punct::RBracket,
                            ',' => Punct::Comma,
                            ';' => Punct::Semi,
                            '+' => Punct::Plus,
                            '-' => Punct::Minus,
                            '*' => Punct::Star,
                            '/' => Punct::Slash,
                            '%' => Punct::Percent,
                            '&' => Punct::Amp,
                            '|' => Punct::Pipe,
                            '^' => Punct::Caret,
                            '~' => Punct::Tilde,
                            '!' => Punct::Bang,
                            '<' => Punct::Lt,
                            '>' => Punct::Gt,
                            '=' => Punct::Assign,
                            _ => {
                                return Err(CompileError::new(
                                    line,
                                    format!("unexpected character {c:?}"),
                                ))
                            }
                        };
                        (p, 1)
                    }
                };
                push!(TokenKind::Punct(p));
                i += len;
            }
        }
    }
    out.push(Token { kind: TokenKind::Eof, line });
    Ok(out)
}

/// Decodes one (possibly escaped) character starting at `i`; returns the
/// byte value and the number of input bytes consumed.
fn unescape(bytes: &[u8], i: usize, line: u32) -> Result<(u8, usize), CompileError> {
    match bytes.get(i) {
        Some(b'\\') => {
            let v = match bytes.get(i + 1) {
                Some(b'n') => b'\n',
                Some(b't') => b'\t',
                Some(b'r') => b'\r',
                Some(b'0') => 0,
                Some(b'\\') => b'\\',
                Some(b'\'') => b'\'',
                Some(b'"') => b'"',
                _ => return Err(CompileError::new(line, "bad escape sequence")),
            };
            Ok((v, 2))
        }
        Some(&b) => Ok((b, 1)),
        None => Err(CompileError::new(line, "unexpected end of input")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_idents_numbers() {
        let ks = kinds("int foo 42 0x2A while");
        assert_eq!(
            ks,
            vec![
                TokenKind::Kw(Kw::Int),
                TokenKind::Ident("foo".into()),
                TokenKind::Int(42),
                TokenKind::Int(42),
                TokenKind::Kw(Kw::While),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn multi_char_operators() {
        let ks = kinds("<<= >>= << >> <= >= == != && || += ++");
        use Punct::*;
        let expect = [ShlEq, ShrEq, Shl, Shr, Le, Ge, EqEq, Ne, AndAnd, OrOr, PlusEq, PlusPlus];
        for (k, e) in ks.iter().zip(expect) {
            assert_eq!(*k, TokenKind::Punct(e));
        }
    }

    #[test]
    fn comments_and_lines() {
        let ts = lex("a // comment\nb /* multi\nline */ c").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 3);
    }

    #[test]
    fn char_and_string_literals() {
        let ks = kinds(r#"'a' '\n' "hi\0""#);
        assert_eq!(ks[0], TokenKind::Int(97));
        assert_eq!(ks[1], TokenKind::Int(10));
        assert_eq!(ks[2], TokenKind::Str(vec![b'h', b'i', 0]));
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("int $x;").is_err());
        assert!(lex("\"unterminated").is_err());
    }
}
