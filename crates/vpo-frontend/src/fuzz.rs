//! Statement-level MiniC fuzzer with a paired reference interpreter.
//!
//! The generator produces whole MiniC translation units — global scalars
//! and an initialized global array, a chain of pure helper functions, and
//! a main function `f(a, b, c)` whose body mixes assignments (plain and
//! compound), `if`/`else`, counted `for` and `while` loops, array reads
//! and writes, and calls — far beyond expression trees. Every program is
//! paired with a reference interpreter over the same AST, so any stage of
//! the pipeline (naive codegen, any phase ordering, the simulator) can be
//! checked differentially: compile and execute the rendered source, and
//! the result must equal [`FuzzProgram::reference`].
//!
//! Three properties make the corpus usable as an oracle workload:
//!
//! * **Total semantics.** Loops are counted (bounded trip counts, a
//!   dedicated counter per nesting depth that bodies cannot write), array
//!   indices are masked into bounds, divisors are non-zero constants, and
//!   shift amounts are constants in `0..32` — no generated program traps
//!   or diverges, on *any* arguments.
//! * **Determinism.** Generation draws only from the seeded
//!   [`Rng`]; equal seeds yield identical programs.
//! * **Observability.** The function's return value folds in every local,
//!   every global scalar, and the whole global array, so a miscompiled
//!   store cannot hide.
//!
//! # Example
//!
//! ```
//! use vpo_rtl::rng::Rng;
//! use vpo_frontend::fuzz::FuzzProgram;
//!
//! let mut rng = Rng::seed_from_u64(7);
//! let fp = FuzzProgram::generate(&mut rng);
//! let program = fp.compile().expect("generated MiniC always compiles");
//! assert_eq!(program.functions.last().unwrap().name, vpo_frontend::fuzz::ENTRY);
//! let args = FuzzProgram::gen_args(&mut rng);
//! let expected = fp.reference(args); // what any correct pipeline must produce
//! # let _ = expected;
//! ```

use vpo_rtl::rng::Rng;
use vpo_rtl::Program;

use crate::CompileError;

/// Parameters of the generated entry function, in order.
pub const PARAMS: [&str; 3] = ["a", "b", "c"];
/// Mutable locals the statements target.
const LOCALS: [&str; 4] = ["x", "y", "z", "w"];
/// Global scalars.
const GLOBALS: [&str; 2] = ["gs0", "gs1"];
/// Name and length of the global array (indices are masked by
/// `ARRAY_LEN - 1`, so the length must be a power of two).
const ARRAY: &str = "arr";
const ARRAY_LEN: usize = 8;
/// Loop counters, one per nesting depth.
const COUNTERS: [&str; 3] = ["t0", "t1", "t2"];
/// Name of the generated entry function.
pub const ENTRY: &str = "f";

/// Wide constants exercising bytewise materialization of values that do
/// not fit an ARM rotated immediate.
const WIDE_CONSTS: [i32; 4] = [0x12345678, -77777, 0x00FF00FF, 0x7FFFFFF1];

/// Expressions. All are side-effect free, so C's unspecified evaluation
/// orders cannot bite, and short-circuit operators agree with their
/// strict counterparts.
#[derive(Clone, Debug)]
enum E {
    /// Entry-function parameter `a`/`b`/`c`.
    Param(u8),
    /// Mutable local `x`/`y`/`z`/`w`.
    Local(u8),
    /// Global scalar.
    Global(u8),
    /// `arr[(e) & 7]`.
    Index(Box<E>),
    /// Loop counter `t<d>` — only generated inside `d+1` nested loops.
    Counter(u8),
    Const(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    /// Shift by a constant in `0..32` (avoids target-undefined shifts).
    Shl(Box<E>, u8),
    /// Arithmetic right shift (`>>`) by a constant.
    Shr(Box<E>, u8),
    /// Logical right shift (`>>>`) by a constant.
    Lshr(Box<E>, u8),
    /// Division by a positive constant (avoids traps, including
    /// `INT_MIN / -1`).
    Div(Box<E>, i32),
    /// Remainder by a positive constant.
    Rem(Box<E>, i32),
    Neg(Box<E>),
    Not(Box<E>),
    /// Logical not: 0/1.
    LNot(Box<E>),
    /// Comparison producing 0/1.
    Lt(Box<E>, Box<E>),
    Eq(Box<E>, Box<E>),
    /// Short-circuit `&&` / `||` (0/1). Operands are pure, so reference
    /// evaluation may be strict.
    LAnd(Box<E>, Box<E>),
    LOr(Box<E>, Box<E>),
    /// Call to helper `h<k>` with two arguments.
    Call(u8, Box<E>, Box<E>),
}

/// Statements of the entry-function body.
#[derive(Clone, Debug)]
enum S {
    /// `local op= e;` (`op` of `None` is a plain assignment).
    AssignLocal(u8, Option<CompoundOp>, E),
    /// `global = e;`
    AssignGlobal(u8, E),
    /// `arr[(i) & 7] = e;`
    StoreArray(E, E),
    If(E, Vec<S>, Vec<S>),
    /// `for (t<d> = 0; t<d> < trips; t<d>++) body` — `d` is the loop
    /// nesting depth at this statement.
    For(u8, Vec<S>),
    /// `t<d> = 0; while (t<d> < trips) { body t<d> += 1; }`.
    While(u8, Vec<S>),
}

/// Compound-assignment operators the generator uses.
#[derive(Clone, Copy, Debug)]
enum CompoundOp {
    Add,
    Xor,
}

/// One generated MiniC program plus everything needed to interpret it.
#[derive(Clone, Debug)]
pub struct FuzzProgram {
    /// Rendered MiniC source of the whole translation unit.
    pub source: String,
    /// Initial values of the global scalars.
    globals: [i32; GLOBALS.len()],
    /// Initial contents of the global array.
    array: [i32; ARRAY_LEN],
    /// Helper bodies: `h<k>(a, b)` returns `helpers[k]` evaluated with the
    /// two arguments (helper `k` may call helpers `0..k`).
    helpers: Vec<E>,
    /// Entry-function body.
    body: Vec<S>,
}

// ---------------------------------------------------------------- render

fn paren(out: &mut String, inner: impl FnOnce(&mut String)) {
    out.push('(');
    inner(out);
    out.push(')');
}

fn render_e(e: &E, out: &mut String) {
    match e {
        E::Param(i) => out.push_str(PARAMS[*i as usize % PARAMS.len()]),
        E::Local(i) => out.push_str(LOCALS[*i as usize % LOCALS.len()]),
        E::Global(i) => out.push_str(GLOBALS[*i as usize % GLOBALS.len()]),
        E::Counter(d) => out.push_str(COUNTERS[*d as usize % COUNTERS.len()]),
        E::Index(i) => {
            out.push_str(ARRAY);
            out.push('[');
            paren(out, |o| render_e(i, o));
            out.push_str(&format!(" & {}]", ARRAY_LEN - 1));
        }
        // Parenthesized so a leading `-` can never fuse with a preceding
        // `-` into the `--` token.
        E::Const(c) => paren(out, |o| o.push_str(&c.to_string())),
        E::Add(a, b) => bin(out, a, "+", b),
        E::Sub(a, b) => bin(out, a, "-", b),
        E::Mul(a, b) => bin(out, a, "*", b),
        E::And(a, b) => bin(out, a, "&", b),
        E::Or(a, b) => bin(out, a, "|", b),
        E::Xor(a, b) => bin(out, a, "^", b),
        E::Lt(a, b) => bin(out, a, "<", b),
        E::Eq(a, b) => bin(out, a, "==", b),
        E::LAnd(a, b) => bin(out, a, "&&", b),
        E::LOr(a, b) => bin(out, a, "||", b),
        E::Shl(a, k) => paren(out, |o| {
            render_e(a, o);
            o.push_str(&format!(" << {k}"));
        }),
        E::Shr(a, k) => paren(out, |o| {
            render_e(a, o);
            o.push_str(&format!(" >> {k}"));
        }),
        E::Lshr(a, k) => paren(out, |o| {
            render_e(a, o);
            o.push_str(&format!(" >>> {k}"));
        }),
        E::Div(a, c) => paren(out, |o| {
            render_e(a, o);
            o.push_str(&format!(" / {c}"));
        }),
        E::Rem(a, c) => paren(out, |o| {
            render_e(a, o);
            o.push_str(&format!(" % {c}"));
        }),
        E::Neg(a) => paren(out, |o| {
            // The space avoids lexing `(-` + `(-1)` as `--`.
            o.push_str("- ");
            render_e(a, o);
        }),
        E::Not(a) => paren(out, |o| {
            o.push('~');
            render_e(a, o);
        }),
        E::LNot(a) => paren(out, |o| {
            o.push('!');
            render_e(a, o);
        }),
        E::Call(k, x, y) => {
            out.push_str(&format!("h{k}("));
            render_e(x, out);
            out.push_str(", ");
            render_e(y, out);
            out.push(')');
        }
    }
}

fn bin(out: &mut String, a: &E, op: &str, b: &E) {
    paren(out, |o| {
        render_e(a, o);
        o.push(' ');
        o.push_str(op);
        o.push(' ');
        render_e(b, o);
    });
}

fn render_s(s: &S, out: &mut String, indent: usize) {
    let pad = "    ".repeat(indent);
    match s {
        S::AssignLocal(l, op, e) => {
            out.push_str(&pad);
            out.push_str(LOCALS[*l as usize % LOCALS.len()]);
            out.push_str(match op {
                None => " = ",
                Some(CompoundOp::Add) => " += ",
                Some(CompoundOp::Xor) => " ^= ",
            });
            render_e(e, out);
            out.push_str(";\n");
        }
        S::AssignGlobal(g, e) => {
            out.push_str(&pad);
            out.push_str(GLOBALS[*g as usize % GLOBALS.len()]);
            out.push_str(" = ");
            render_e(e, out);
            out.push_str(";\n");
        }
        S::StoreArray(i, e) => {
            out.push_str(&pad);
            out.push_str(ARRAY);
            out.push('[');
            paren(out, |o| render_e(i, o));
            out.push_str(&format!(" & {}] = ", ARRAY_LEN - 1));
            render_e(e, out);
            out.push_str(";\n");
        }
        S::If(c, t, f) => {
            out.push_str(&pad);
            out.push_str("if (");
            render_e(c, out);
            out.push_str(" != 0) {\n");
            for st in t {
                render_s(st, out, indent + 1);
            }
            out.push_str(&pad);
            if f.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for st in f {
                    render_s(st, out, indent + 1);
                }
                out.push_str(&pad);
                out.push_str("}\n");
            }
        }
        S::For(packed, body) => {
            let iv = COUNTERS[loop_depth(*packed)];
            let trips = loop_trips(*packed);
            out.push_str(&pad);
            out.push_str(&format!("for ({iv} = 0; {iv} < {trips}; {iv}++) {{\n"));
            for st in body {
                render_s(st, out, indent + 1);
            }
            out.push_str(&pad);
            out.push_str("}\n");
        }
        S::While(packed, body) => {
            let iv = COUNTERS[loop_depth(*packed)];
            let trips = loop_trips(*packed);
            out.push_str(&pad);
            out.push_str(&format!("{iv} = 0;\n"));
            out.push_str(&pad);
            out.push_str(&format!("while ({iv} < {trips}) {{\n"));
            for st in body {
                render_s(st, out, indent + 1);
            }
            out.push_str(&"    ".repeat(indent + 1));
            out.push_str(&format!("{iv} += 1;\n"));
            out.push_str(&pad);
            out.push_str("}\n");
        }
    }
}

/// Loops pack (nesting depth, trip count) into one byte at generation
/// time; the depth selects the dedicated counter variable, so rendering
/// and interpretation always agree on which counter a loop owns.
fn loop_depth(packed: u8) -> usize {
    (packed >> 4) as usize % COUNTERS.len()
}

/// Trip count of a loop statement (the low nibble of the packed field).
fn loop_trips(packed: u8) -> u8 {
    packed & 0x0F
}

// ------------------------------------------------------------- generate

struct Gen<'r> {
    rng: &'r mut Rng,
    /// Helpers callable from the expression being generated.
    callable: usize,
}

impl Gen<'_> {
    fn leaf(&mut self, depth_loops: usize, pure_helper: bool) -> E {
        loop {
            match self.rng.gen_range(0..7) {
                // Helpers only declare two parameters (`a`, `b`).
                0 => {
                    let n = if pure_helper { 2 } else { PARAMS.len() };
                    return E::Param(self.rng.gen_range(0..n) as u8);
                }
                1 if !pure_helper => return E::Local(self.rng.gen_range(0..LOCALS.len()) as u8),
                2 if !pure_helper => return E::Global(self.rng.gen_range(0..GLOBALS.len()) as u8),
                3 if !pure_helper => {
                    let idx = self.expr(0, depth_loops, pure_helper);
                    return E::Index(Box::new(idx));
                }
                4 if depth_loops > 0 && !pure_helper => {
                    return E::Counter(self.rng.gen_range(0..depth_loops) as u8)
                }
                5 => return E::Const(self.rng.gen_range_i32(-200..200)),
                6 => return E::Const(WIDE_CONSTS[self.rng.gen_range(0..WIDE_CONSTS.len())]),
                _ => {}
            }
        }
    }

    fn expr(&mut self, depth: u32, loops: usize, pure_helper: bool) -> E {
        // A quarter of interior draws bottom out early (leaf bias).
        if depth == 0 || self.rng.gen_range(0..4) == 0 {
            return self.leaf(loops, pure_helper);
        }
        let sub = |g: &mut Self| Box::new(g.expr(depth - 1, loops, pure_helper));
        match self.rng.gen_range(0..18) {
            0 => E::Add(sub(self), sub(self)),
            1 => E::Sub(sub(self), sub(self)),
            2 => E::Mul(sub(self), sub(self)),
            3 => E::And(sub(self), sub(self)),
            4 => E::Or(sub(self), sub(self)),
            5 => E::Xor(sub(self), sub(self)),
            6 => E::Shl(sub(self), self.rng.gen_range(0..31) as u8),
            7 => E::Shr(sub(self), self.rng.gen_range(0..31) as u8),
            8 => E::Lshr(sub(self), self.rng.gen_range(0..31) as u8),
            9 => E::Div(sub(self), self.rng.gen_range_i32(1..50)),
            10 => E::Rem(sub(self), self.rng.gen_range_i32(1..50)),
            11 => E::Neg(sub(self)),
            12 => E::Not(sub(self)),
            13 => E::LNot(sub(self)),
            14 => E::Lt(sub(self), sub(self)),
            15 => E::Eq(sub(self), sub(self)),
            16 => {
                if self.rng.gen_bool() {
                    E::LAnd(sub(self), sub(self))
                } else {
                    E::LOr(sub(self), sub(self))
                }
            }
            _ => {
                if self.callable == 0 {
                    E::Xor(sub(self), sub(self))
                } else {
                    let k = self.rng.gen_range(0..self.callable) as u8;
                    E::Call(k, sub(self), sub(self))
                }
            }
        }
    }

    fn stmt(&mut self, depth: u32, loops: usize) -> S {
        let pick = if depth == 0 || loops >= COUNTERS.len() {
            self.rng.gen_range(0..5)
        } else {
            self.rng.gen_range(0..8)
        };
        match pick {
            0 | 1 => {
                let op = match self.rng.gen_range(0..4) {
                    0 => Some(CompoundOp::Add),
                    1 => Some(CompoundOp::Xor),
                    _ => None,
                };
                S::AssignLocal(
                    self.rng.gen_range(0..LOCALS.len()) as u8,
                    op,
                    self.expr(3, loops, false),
                )
            }
            2 => S::AssignGlobal(
                self.rng.gen_range(0..GLOBALS.len()) as u8,
                self.expr(3, loops, false),
            ),
            3 => S::StoreArray(self.expr(2, loops, false), self.expr(3, loops, false)),
            4 => {
                let c = self.expr(3, loops, false);
                let d = depth.saturating_sub(1);
                let t = self.block(d, loops, 1, 3);
                let f = self.block(d, loops, 0, 3);
                S::If(c, t, f)
            }
            _ => {
                // Pack (nesting depth, trip count) into the loop tag; the
                // depth selects the dedicated counter the body cannot
                // write, the trip count bounds execution.
                let trips = self.rng.gen_range(1..6) as u8;
                let packed = ((loops as u8) << 4) | trips;
                let body = self.block(depth - 1, loops + 1, 1, 3);
                if self.rng.gen_bool() {
                    S::For(packed, body)
                } else {
                    S::While(packed, body)
                }
            }
        }
    }

    fn block(&mut self, depth: u32, loops: usize, min: usize, max: usize) -> Vec<S> {
        (0..self.rng.gen_range(min..max)).map(|_| self.stmt(depth, loops)).collect()
    }
}

impl FuzzProgram {
    /// Generates a fresh program from the seeded generator. Equal `rng`
    /// states yield identical programs.
    pub fn generate(rng: &mut Rng) -> FuzzProgram {
        let globals =
            [rng.gen_range_i32(-1000..1000), WIDE_CONSTS[rng.gen_range(0..WIDE_CONSTS.len())]];
        let mut array = [0i32; ARRAY_LEN];
        for slot in &mut array {
            *slot = rng.gen_range_i32(-500..500);
        }
        let helper_count = rng.gen_range(0..3);
        let mut helpers = Vec::with_capacity(helper_count);
        for k in 0..helper_count {
            let mut g = Gen { rng, callable: k };
            helpers.push(g.expr(3, 0, true));
        }
        let mut g = Gen { rng, callable: helper_count };
        let body = g.block(3, 0, 2, 7);
        let mut fp = FuzzProgram { source: String::new(), globals, array, helpers, body };
        fp.source = fp.render();
        fp
    }

    /// Deterministic argument tuples for the entry function.
    pub fn gen_args(rng: &mut Rng) -> [i32; 3] {
        [
            rng.gen_range_i32(-1000..1000),
            rng.gen_range_i32(-1000..1000),
            rng.gen_range_i32(-1000..1000),
        ]
    }

    fn render(&self) -> String {
        let mut out = String::new();
        // Global initializers are bare (optionally negated) constants in
        // the MiniC grammar — no parentheses here.
        out.push_str(&format!("int {} = {};\n", GLOBALS[0], self.globals[0]));
        out.push_str(&format!("int {} = {};\n", GLOBALS[1], self.globals[1]));
        let elems: Vec<String> = self.array.iter().map(|v| format!("{v}")).collect();
        out.push_str(&format!("int {ARRAY}[{ARRAY_LEN}] = {{ {} }};\n\n", elems.join(", ")));
        for (k, body) in self.helpers.iter().enumerate() {
            out.push_str(&format!("int h{k}(int a, int b) {{\n    return "));
            // Helper bodies reuse the first two parameter names.
            render_e(body, &mut out);
            out.push_str(";\n}\n\n");
        }
        out.push_str(&format!("int {ENTRY}(int a, int b, int c) {{\n"));
        for l in LOCALS {
            out.push_str(&format!("    int {l} = 0;\n"));
        }
        for t in COUNTERS {
            out.push_str(&format!("    int {t};\n"));
        }
        for s in &self.body {
            render_s(s, &mut out, 1);
        }
        // Fold every observable location into the return value so no
        // memory effect can hide from a differential check.
        out.push_str(&format!(
            "    {x} = {x} ^ {y} ^ {z} ^ {w} ^ {g0} ^ {g1};\n",
            x = LOCALS[0],
            y = LOCALS[1],
            z = LOCALS[2],
            w = LOCALS[3],
            g0 = GLOBALS[0],
            g1 = GLOBALS[1],
        ));
        out.push_str(&format!(
            "    for ({t} = 0; {t} < {ARRAY_LEN}; {t}++) {x} ^= {ARRAY}[{t}];\n",
            t = COUNTERS[0],
            x = LOCALS[0],
        ));
        out.push_str(&format!("    return {};\n}}\n", LOCALS[0]));
        out
    }

    /// Compiles the rendered source with the real front end.
    ///
    /// # Errors
    ///
    /// Never errors for generator-produced programs; the `Result` exists
    /// so failures report the offending source instead of panicking deep
    /// inside the front end.
    pub fn compile(&self) -> Result<Program, CompileError> {
        crate::compile(&self.source)
    }

    /// Reference execution: interprets the AST directly, with the same
    /// wrapping 32-bit semantics as the RTL target, and returns the value
    /// `f(a, b, c)` must produce.
    pub fn reference(&self, args: [i32; 3]) -> i32 {
        let mut st = State {
            params: args,
            locals: [0; LOCALS.len()],
            counters: [0; COUNTERS.len()],
            globals: self.globals,
            array: self.array,
            helpers: &self.helpers,
        };
        st.stmts(&self.body);
        let mut acc = st.locals[0]
            ^ st.locals[1]
            ^ st.locals[2]
            ^ st.locals[3]
            ^ st.globals[0]
            ^ st.globals[1];
        for v in st.array {
            acc ^= v;
        }
        acc
    }
}

// ------------------------------------------------------------ interpret

struct State<'p> {
    params: [i32; 3],
    locals: [i32; LOCALS.len()],
    counters: [i32; COUNTERS.len()],
    globals: [i32; GLOBALS.len()],
    array: [i32; ARRAY_LEN],
    helpers: &'p [E],
}

impl State<'_> {
    fn expr(&self, e: &E) -> i32 {
        match e {
            E::Param(i) => self.params[*i as usize % PARAMS.len()],
            E::Local(i) => self.locals[*i as usize % LOCALS.len()],
            E::Global(i) => self.globals[*i as usize % GLOBALS.len()],
            E::Counter(d) => self.counters[*d as usize % COUNTERS.len()],
            E::Index(i) => self.array[(self.expr(i) & (ARRAY_LEN as i32 - 1)) as usize],
            E::Const(c) => *c,
            E::Add(a, b) => self.expr(a).wrapping_add(self.expr(b)),
            E::Sub(a, b) => self.expr(a).wrapping_sub(self.expr(b)),
            E::Mul(a, b) => self.expr(a).wrapping_mul(self.expr(b)),
            E::And(a, b) => self.expr(a) & self.expr(b),
            E::Or(a, b) => self.expr(a) | self.expr(b),
            E::Xor(a, b) => self.expr(a) ^ self.expr(b),
            E::Shl(a, k) => self.expr(a).wrapping_shl(*k as u32),
            E::Shr(a, k) => self.expr(a).wrapping_shr(*k as u32),
            E::Lshr(a, k) => ((self.expr(a) as u32) >> *k) as i32,
            E::Div(a, c) => self.expr(a).wrapping_div(*c),
            E::Rem(a, c) => self.expr(a).wrapping_rem(*c),
            E::Neg(a) => self.expr(a).wrapping_neg(),
            E::Not(a) => !self.expr(a),
            E::LNot(a) => (self.expr(a) == 0) as i32,
            E::Lt(a, b) => (self.expr(a) < self.expr(b)) as i32,
            E::Eq(a, b) => (self.expr(a) == self.expr(b)) as i32,
            E::LAnd(a, b) => (self.expr(a) != 0 && self.expr(b) != 0) as i32,
            E::LOr(a, b) => (self.expr(a) != 0 || self.expr(b) != 0) as i32,
            E::Call(k, x, y) => {
                let (a, b) = (self.expr(x), self.expr(y));
                self.helper(*k as usize, a, b)
            }
        }
    }

    /// Evaluates helper `k` with parameters `a`, `b`. Helper bodies read
    /// only their parameters (pure), so a temporary state suffices.
    fn helper(&self, k: usize, a: i32, b: i32) -> i32 {
        let st = State {
            params: [a, b, 0],
            locals: [0; LOCALS.len()],
            counters: [0; COUNTERS.len()],
            globals: self.globals,
            array: self.array,
            helpers: self.helpers,
        };
        st.expr(&self.helpers[k])
    }

    fn stmts(&mut self, body: &[S]) {
        for s in body {
            match s {
                S::AssignLocal(l, op, e) => {
                    let v = self.expr(e);
                    let slot = &mut self.locals[*l as usize % LOCALS.len()];
                    *slot = match op {
                        None => v,
                        Some(CompoundOp::Add) => slot.wrapping_add(v),
                        Some(CompoundOp::Xor) => *slot ^ v,
                    };
                }
                S::AssignGlobal(g, e) => self.globals[*g as usize % GLOBALS.len()] = self.expr(e),
                S::StoreArray(i, e) => {
                    let idx = (self.expr(i) & (ARRAY_LEN as i32 - 1)) as usize;
                    self.array[idx] = self.expr(e);
                }
                S::If(c, t, f) => {
                    if self.expr(c) != 0 {
                        self.stmts(t);
                    } else {
                        self.stmts(f);
                    }
                }
                S::For(packed, body) | S::While(packed, body) => {
                    let d = loop_depth(*packed);
                    let trips = loop_trips(*packed) as i32;
                    self.counters[d] = 0;
                    while self.counters[d] < trips {
                        self.stmts(body);
                        self.counters[d] += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_compile() {
        for seed in 0..40u64 {
            let mut rng = Rng::seed_from_u64(0xF055 ^ seed);
            let fp = FuzzProgram::generate(&mut rng);
            fp.compile().unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", fp.source));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FuzzProgram::generate(&mut Rng::seed_from_u64(11));
        let b = FuzzProgram::generate(&mut Rng::seed_from_u64(11));
        assert_eq!(a.source, b.source);
        let c = FuzzProgram::generate(&mut Rng::seed_from_u64(12));
        assert_ne!(a.source, c.source, "different seeds should differ");
    }

    #[test]
    fn reference_is_total_and_deterministic() {
        for seed in 0..40u64 {
            let mut rng = Rng::seed_from_u64(0xABCD ^ seed);
            let fp = FuzzProgram::generate(&mut rng);
            let args = FuzzProgram::gen_args(&mut rng);
            assert_eq!(fp.reference(args), fp.reference(args));
        }
    }
}
