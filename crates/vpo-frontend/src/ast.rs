//! The MiniC abstract syntax tree.

/// Element type of a variable or array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ElemType {
    /// 32-bit signed integer.
    Int,
    /// 8-bit unsigned character (zero-extended on load).
    Char,
}

/// A whole translation unit.
#[derive(Clone, Debug, Default)]
pub struct Unit {
    /// Global variable definitions, in source order.
    pub globals: Vec<GlobalDecl>,
    /// Function definitions, in source order.
    pub functions: Vec<FunctionDecl>,
}

/// A global variable definition.
#[derive(Clone, Debug)]
pub struct GlobalDecl {
    /// Variable name.
    pub name: String,
    /// Element type.
    pub ty: ElemType,
    /// Array length in elements (`None` for a scalar).
    pub array_len: Option<usize>,
    /// Initializer.
    pub init: GlobalInit,
    /// Source line.
    pub line: u32,
}

/// Global initializers.
#[derive(Clone, Debug)]
pub enum GlobalInit {
    /// Zero-initialized.
    Zero,
    /// A single scalar value.
    Scalar(i64),
    /// A brace list of values.
    List(Vec<i64>),
    /// A string literal (for `char` arrays); implicitly NUL-terminated.
    Str(Vec<u8>),
}

/// A function definition.
#[derive(Clone, Debug)]
pub struct FunctionDecl {
    /// Function name.
    pub name: String,
    /// Whether the function returns a value (`int`) or `void`.
    pub returns_value: bool,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: u32,
}

/// A function parameter.
#[derive(Clone, Debug)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Element type.
    pub ty: ElemType,
    /// Whether the parameter is an array/pointer (`int a[]` or `int *a`).
    pub is_array: bool,
}

/// Statements.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// A local variable declaration.
    Decl {
        /// Variable name.
        name: String,
        /// Element type.
        ty: ElemType,
        /// Array length (`None` for scalars).
        array_len: Option<usize>,
        /// Optional scalar initializer.
        init: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// An expression evaluated for effect.
    Expr(Expr),
    /// `if (cond) then else els`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch (possibly empty).
        els: Vec<Stmt>,
    },
    /// `while (cond) body`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `do body while (cond);`
    DoWhile {
        /// Body.
        body: Vec<Stmt>,
        /// Condition.
        cond: Expr,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Initialization expression, if any.
        init: Option<Expr>,
        /// Condition, if any (absent means `true`).
        cond: Option<Expr>,
        /// Step expression, if any.
        step: Option<Expr>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return expr;`
    Return(Option<Expr>),
    /// `break;`
    Break(u32),
    /// `continue;`
    Continue(u32),
    /// A nested block.
    Block(Vec<Stmt>),
}

/// Binary operators (arithmetic/bitwise only; comparisons and short-circuit
/// logic are separate because they generate control flow).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Ushr,
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Expressions. Every node carries its source line for diagnostics.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Integer literal.
    Int(i64, u32),
    /// Variable reference.
    Var(String, u32),
    /// Array indexing `base[index]`.
    Index {
        /// Array variable name.
        base: String,
        /// Index expression.
        index: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Arithmetic or bitwise binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Comparison producing 0 or 1.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Short-circuit logical and/or.
    Logical {
        /// `true` for `&&`, `false` for `||`.
        is_and: bool,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Unary negation `-x`.
    Neg(Box<Expr>, u32),
    /// Bitwise complement `~x`.
    Not(Box<Expr>, u32),
    /// Logical not `!x` (produces 0 or 1).
    LogicalNot(Box<Expr>, u32),
    /// Assignment `lvalue = value` (value of the expression is `value`).
    Assign {
        /// Assignment target.
        target: Box<Expr>,
        /// Assigned value.
        value: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Function call.
    Call {
        /// Callee name.
        callee: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
}

impl Expr {
    /// The source line of the expression.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Int(_, l)
            | Expr::Var(_, l)
            | Expr::Index { line: l, .. }
            | Expr::Binary { line: l, .. }
            | Expr::Cmp { line: l, .. }
            | Expr::Logical { line: l, .. }
            | Expr::Neg(_, l)
            | Expr::Not(_, l)
            | Expr::LogicalNot(_, l)
            | Expr::Assign { line: l, .. }
            | Expr::Call { line: l, .. } => *l,
        }
    }
}
