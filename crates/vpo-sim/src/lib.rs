//! RTL interpreter with dynamic instruction counting.
//!
//! The paper's eventual measure of execution efficiency is the *dynamic
//! instruction count* ("Dynamic instruction counts, unlike cycle counts,
//! are a crude approximation of execution efficiency", Section 7) — this
//! crate provides exactly that substrate: a deterministic interpreter for
//! RTL [`Program`]s that executes function instances produced by **any**
//! phase ordering and counts every executed instruction.
//!
//! Two modelling choices are worth knowing:
//!
//! * **Per-activation register state.** Each call frame has its own
//!   register file, so a call defines only its result register in the
//!   caller. This matches how the optimizer models calls and sidesteps
//!   caller-/callee-save conventions without weakening any phase
//!   interaction (calls still clobber memory).
//! * **Flat little-endian memory.** Globals are laid out from a fixed
//!   base; each frame's locals are carved from a downward-growing stack.
//!   `HI[sym]`/`LO[sym]` split the global's address exactly like the
//!   ARM idiom the paper shows in Figure 5.
//!
//! # Example
//!
//! ```
//! let program = vpo_frontend::compile(
//!     "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }",
//! ).unwrap();
//! let mut m = vpo_sim::Machine::new(&program);
//! assert_eq!(m.call("fact", &[5]).unwrap(), 120);
//! assert!(m.dynamic_insts() > 0);
//! ```

use std::collections::HashMap;

use vpo_rtl::crc::crc32;
use vpo_rtl::{BinOp, Expr, Function, Inst, Program, Reg, SymId, Width};

/// Simulator errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// Integer division or remainder by zero (or `INT_MIN / -1`).
    DivideByZero {
        /// Function in which the trap occurred.
        function: String,
    },
    /// A memory access outside the allocated address space.
    BadAddress {
        /// The offending address.
        addr: u32,
        /// Function in which the access occurred.
        function: String,
    },
    /// Shift amount outside `0..32` (undefined on the modelled target).
    BadShift {
        /// The offending shift amount.
        amount: i32,
    },
    /// Call to a function not present in the program.
    UnknownFunction(String),
    /// The configured instruction budget was exhausted (runaway loop).
    OutOfFuel,
    /// Call stack exceeded the configured depth.
    StackOverflow,
    /// The stack region was exhausted by local allocations.
    OutOfStack,
    /// A function fell off its last block without returning.
    MissingReturn(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::DivideByZero { function } => {
                write!(f, "division by zero in `{function}`")
            }
            SimError::BadAddress { addr, function } => {
                write!(f, "bad memory access at {addr:#x} in `{function}`")
            }
            SimError::BadShift { amount } => write!(f, "shift by {amount} is undefined"),
            SimError::UnknownFunction(n) => write!(f, "call to unknown function `{n}`"),
            SimError::OutOfFuel => write!(f, "instruction budget exhausted"),
            SimError::StackOverflow => write!(f, "call stack overflow"),
            SimError::OutOfStack => write!(f, "stack region exhausted"),
            SimError::MissingReturn(n) => write!(f, "function `{n}` fell off the end"),
        }
    }
}

impl std::error::Error for SimError {}

/// Address where the globals segment starts.
const GLOBAL_BASE: u32 = 0x1000;
/// Default memory size (globals + heap-less stack).
const DEFAULT_MEM: usize = 1 << 20;
/// Default dynamic-instruction budget.
const DEFAULT_FUEL: u64 = 200_000_000;
/// Default maximum call depth.
const MAX_DEPTH: usize = 256;

/// An RTL machine: memory, globals layout, and instruction counters.
#[derive(Clone)]
pub struct Machine<'p> {
    program: &'p Program,
    mem: Vec<u8>,
    global_addr: Vec<u32>,
    stack_top: u32,
    dynamic: u64,
    fuel: u64,
    functions: HashMap<&'p str, &'p Function>,
    /// Per-block entry counters for the *outermost* frame of
    /// [`Machine::call_instance_counted`], if one is active.
    block_counts: Option<Vec<u64>>,
}

impl<'p> Machine<'p> {
    /// Creates a machine for `program` with default memory and fuel, and
    /// initializes global storage.
    pub fn new(program: &'p Program) -> Self {
        Machine::with_mem_size(program, DEFAULT_MEM)
    }

    /// Creates a machine with a custom memory image size. Smaller images
    /// make [`Machine::reset`] (which zeroes the whole image) much cheaper
    /// — the differential oracle runs tens of thousands of short
    /// simulations and resets between every one.
    ///
    /// # Panics
    ///
    /// Panics if the program's globals do not fit in half of `mem_size`.
    pub fn with_mem_size(program: &'p Program, mem_size: usize) -> Self {
        let mut m = Machine {
            program,
            mem: vec![0; mem_size],
            global_addr: Vec::new(),
            stack_top: mem_size as u32,
            dynamic: 0,
            fuel: DEFAULT_FUEL,
            functions: program.functions.iter().map(|f| (f.name.as_str(), f)).collect(),
            block_counts: None,
        };
        m.layout_globals();
        m
    }

    /// Replaces the instruction budget (default 200M).
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Dynamic instructions executed so far.
    pub fn dynamic_insts(&self) -> u64 {
        self.dynamic
    }

    /// Resets memory (re-initializing globals) and the dynamic counter.
    pub fn reset(&mut self) {
        self.mem.iter_mut().for_each(|b| *b = 0);
        self.layout_globals();
        self.dynamic = 0;
    }

    fn layout_globals(&mut self) {
        self.global_addr.clear();
        let mut addr = GLOBAL_BASE;
        for g in &self.program.globals {
            // Word-align each global.
            addr = (addr + 3) & !3;
            self.global_addr.push(addr);
            let base = addr as usize;
            if !g.init_bytes.is_empty() {
                self.mem[base..base + g.init_bytes.len()].copy_from_slice(&g.init_bytes);
            } else {
                for (i, w) in g.init.iter().enumerate() {
                    self.mem[base + 4 * i..base + 4 * i + 4].copy_from_slice(&w.to_le_bytes());
                }
            }
            addr += g.size.max(1);
        }
        assert!((addr as usize) < self.mem.len() / 2, "globals overflow the memory image");
    }

    /// Address of a global by symbol id.
    pub fn global_address(&self, sym: SymId) -> u32 {
        self.global_addr[sym.0 as usize]
    }

    /// CRC-32 digest of the whole globals segment — a summary of every
    /// memory effect execution has left behind. Two runs whose return
    /// values and globals digests both match are observationally
    /// identical to this machine's memory model (per-activation registers
    /// and the stack do not outlive a call).
    pub fn globals_crc(&self) -> u32 {
        let end = self
            .program
            .globals
            .iter()
            .zip(&self.global_addr)
            .map(|(g, &a)| a + g.size.max(1))
            .max()
            .unwrap_or(GLOBAL_BASE);
        crc32(&self.mem[GLOBAL_BASE as usize..end as usize])
    }

    /// Reads word `index` of the named global.
    ///
    /// # Panics
    ///
    /// Panics if the global does not exist or the access is out of range.
    pub fn read_global_word(&self, name: &str, index: usize) -> i32 {
        let sym = self.program.global_by_name(name).expect("global exists");
        let base = self.global_addr[sym.0 as usize] as usize + 4 * index;
        i32::from_le_bytes(self.mem[base..base + 4].try_into().unwrap())
    }

    /// Writes word `index` of the named global.
    ///
    /// # Panics
    ///
    /// Panics if the global does not exist or the access is out of range.
    pub fn write_global_word(&mut self, name: &str, index: usize, value: i32) {
        let sym = self.program.global_by_name(name).expect("global exists");
        let base = self.global_addr[sym.0 as usize] as usize + 4 * index;
        self.mem[base..base + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads byte `index` of the named global (for `char` arrays).
    ///
    /// # Panics
    ///
    /// Panics if the global does not exist or the access is out of range.
    pub fn read_global_byte(&self, name: &str, index: usize) -> u8 {
        let sym = self.program.global_by_name(name).expect("global exists");
        self.mem[self.global_addr[sym.0 as usize] as usize + index]
    }

    /// Writes raw bytes into the named global.
    ///
    /// # Panics
    ///
    /// Panics if the global does not exist or the data does not fit.
    pub fn write_global_bytes(&mut self, name: &str, data: &[u8]) {
        let sym = self.program.global_by_name(name).expect("global exists");
        let base = self.global_addr[sym.0 as usize] as usize;
        self.mem[base..base + data.len()].copy_from_slice(data);
    }

    /// Calls function `name` with `args`, returning its value (functions
    /// without an explicit value return 0).
    ///
    /// # Errors
    ///
    /// Any [`SimError`] raised during execution; memory contents at that
    /// point are left as they were (useful for debugging).
    pub fn call(&mut self, name: &str, args: &[i32]) -> Result<i32, SimError> {
        let stack_top = self.stack_top;
        let r = self.call_inner(name, args, 0);
        self.stack_top = stack_top;
        r
    }

    /// Calls a specific function *instance* (e.g. one produced by a custom
    /// phase ordering) instead of the program's own copy. Other functions
    /// called by `f` still resolve through the program.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::call`].
    pub fn call_instance(&mut self, f: &Function, args: &[i32]) -> Result<i32, SimError> {
        let stack_top = self.stack_top;
        let r = self.exec(f, args, 0);
        self.stack_top = stack_top;
        r
    }

    /// Like [`Machine::call_instance`], but additionally returns how many
    /// times each basic block of `f` was *entered* (indexed by block
    /// position). This is the measurement behind the paper's Section 7
    /// idea: instances sharing a control flow execute their corresponding
    /// blocks the same number of times, so one execution per distinct
    /// control flow suffices to infer every instance's dynamic count as
    /// `Σ entries(block) × len(block)`.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::call`].
    pub fn call_instance_counted(
        &mut self,
        f: &Function,
        args: &[i32],
    ) -> Result<(i32, Vec<u64>), SimError> {
        let stack_top = self.stack_top;
        let mut counts = vec![0u64; f.blocks.len()];
        self.block_counts = Some(std::mem::take(&mut counts));
        let r = self.exec(f, args, 0);
        let counts = self.block_counts.take().unwrap_or_default();
        self.stack_top = stack_top;
        Ok((r?, counts))
    }

    fn call_inner(&mut self, name: &str, args: &[i32], depth: usize) -> Result<i32, SimError> {
        let Some(&f) = self.functions.get(name) else {
            return Err(SimError::UnknownFunction(name.to_owned()));
        };
        self.exec(f, args, depth)
    }

    fn exec(&mut self, f: &Function, args: &[i32], depth: usize) -> Result<i32, SimError> {
        if depth > MAX_DEPTH {
            return Err(SimError::StackOverflow);
        }
        // Frame layout: locals carved from the stack.
        let frame_size: u32 = f.locals.iter().map(|l| (l.size + 3) & !3).sum();
        if frame_size + 64 > self.stack_top {
            return Err(SimError::OutOfStack);
        }
        let frame_base = self.stack_top - frame_size;
        let saved_top = self.stack_top;
        self.stack_top = frame_base;
        let mut local_addr = Vec::with_capacity(f.locals.len());
        {
            let mut a = frame_base;
            for l in &f.locals {
                local_addr.push(a);
                a += (l.size + 3) & !3;
            }
        }

        let mut frame = Frame { regs: HashMap::new(), cc: (0, 0), local_addr };
        // The stack pointer convention for *finalized* code (the fix
        // entry/exit phase): register 13 starts at the frame's upper bound,
        // so `r13 - frame_size` addresses exactly the region this
        // interpreter reserved for the locals. Unfinalized code never
        // touches r13 (it is outside the allocatable range).
        frame.regs.insert(Reg::hard(13), saved_top as i32);
        for (i, &p) in f.params.iter().enumerate() {
            frame.regs.insert(p, args.get(i).copied().unwrap_or(0));
        }

        let mut bi = 0usize;
        let mut ii = 0usize;
        let counting = depth == 0 && self.block_counts.is_some();
        if counting {
            if let Some(c) = self.block_counts.as_mut() {
                if let Some(slot) = c.get_mut(0) {
                    *slot += 1;
                }
            }
        }
        let result = loop {
            let Some(block) = f.blocks.get(bi) else {
                break Err(SimError::MissingReturn(f.name.clone()));
            };
            let Some(inst) = block.insts.get(ii) else {
                // Fall through to the next positional block.
                bi += 1;
                ii = 0;
                if counting {
                    if let Some(c) = self.block_counts.as_mut() {
                        if let Some(slot) = c.get_mut(bi) {
                            *slot += 1;
                        }
                    }
                }
                continue;
            };
            if self.dynamic >= self.fuel {
                break Err(SimError::OutOfFuel);
            }
            self.dynamic += 1;
            ii += 1;
            match inst {
                Inst::Assign { dst, src } => {
                    let v = self.eval(src, &frame, f)?;
                    frame.regs.insert(*dst, v);
                }
                Inst::Store { width, addr, src } => {
                    let a = self.eval(addr, &frame, f)? as u32;
                    let v = self.eval(src, &frame, f)?;
                    self.write(a, v, *width, f)?;
                }
                Inst::Compare { lhs, rhs } => {
                    let a = self.eval(lhs, &frame, f)?;
                    let b = self.eval(rhs, &frame, f)?;
                    frame.cc = (a, b);
                }
                Inst::CondBranch { cond, target } => {
                    if cond.eval(frame.cc.0, frame.cc.1) {
                        bi = f.block_index(*target).expect("dangling branch target");
                        ii = 0;
                        if counting {
                            if let Some(c) = self.block_counts.as_mut() {
                                c[bi] += 1;
                            }
                        }
                    }
                }
                Inst::Jump { target } => {
                    bi = f.block_index(*target).expect("dangling jump target");
                    ii = 0;
                    if counting {
                        if let Some(c) = self.block_counts.as_mut() {
                            c[bi] += 1;
                        }
                    }
                }
                Inst::Call { callee, args: call_args, dst } => {
                    let mut vals = Vec::with_capacity(call_args.len());
                    for a in call_args {
                        vals.push(self.eval(a, &frame, f)?);
                    }
                    let r = self.call_inner(callee, &vals, depth + 1)?;
                    if let Some(d) = dst {
                        frame.regs.insert(*d, r);
                    }
                }
                Inst::Return { value } => {
                    let v = match value {
                        Some(e) => self.eval(e, &frame, f)?,
                        None => 0,
                    };
                    break Ok(v);
                }
            }
        };
        self.stack_top = saved_top;
        result
    }

    fn eval(&self, e: &Expr, frame: &Frame, f: &Function) -> Result<i32, SimError> {
        Ok(match e {
            Expr::Reg(r) => frame.regs.get(r).copied().unwrap_or(0),
            Expr::Const(c) => *c as i32,
            Expr::Hi(sym) => (self.global_addr[sym.0 as usize] & !0xFFF) as i32,
            Expr::Lo(sym) => (self.global_addr[sym.0 as usize] & 0xFFF) as i32,
            Expr::LocalAddr(l) => frame.local_addr[l.0 as usize] as i32,
            Expr::Un(op, a) => op.eval(self.eval(a, frame, f)?),
            Expr::Bin(op, a, b) => {
                let x = self.eval(a, frame, f)?;
                let y = self.eval(b, frame, f)?;
                match op.eval(x, y) {
                    Some(v) => v,
                    None => {
                        return Err(match op {
                            BinOp::Div | BinOp::Rem => {
                                SimError::DivideByZero { function: f.name.clone() }
                            }
                            _ => SimError::BadShift { amount: y },
                        })
                    }
                }
            }
            Expr::Load(width, a) => {
                let addr = self.eval(a, frame, f)? as u32;
                self.read(addr, *width, f)?
            }
        })
    }

    fn read(&self, addr: u32, width: Width, f: &Function) -> Result<i32, SimError> {
        let a = addr as usize;
        match width {
            Width::Byte => self
                .mem
                .get(a)
                .map(|&b| b as i32)
                .ok_or(SimError::BadAddress { addr, function: f.name.clone() }),
            Width::Word => {
                if a + 4 <= self.mem.len() {
                    Ok(i32::from_le_bytes(self.mem[a..a + 4].try_into().unwrap()))
                } else {
                    Err(SimError::BadAddress { addr, function: f.name.clone() })
                }
            }
        }
    }

    fn write(&mut self, addr: u32, v: i32, width: Width, f: &Function) -> Result<(), SimError> {
        let a = addr as usize;
        match width {
            Width::Byte => match self.mem.get_mut(a) {
                Some(b) => {
                    *b = v as u8;
                    Ok(())
                }
                None => Err(SimError::BadAddress { addr, function: f.name.clone() }),
            },
            Width::Word => {
                if a + 4 <= self.mem.len() {
                    self.mem[a..a + 4].copy_from_slice(&v.to_le_bytes());
                    Ok(())
                } else {
                    Err(SimError::BadAddress { addr, function: f.name.clone() })
                }
            }
        }
    }
}

struct Frame {
    regs: HashMap<Reg, i32>,
    cc: (i32, i32),
    local_addr: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_frontend::compile;

    fn run(src: &str, func: &str, args: &[i32]) -> i32 {
        let p = compile(src).unwrap();
        let mut m = Machine::new(&p);
        m.call(func, args).unwrap()
    }

    #[test]
    fn arithmetic_and_calls() {
        let src = r#"
            int add(int a, int b) { return a + b; }
            int twice(int x) { return add(x, x); }
        "#;
        assert_eq!(run(src, "twice", &[21]), 42);
    }

    #[test]
    fn loops_and_arrays() {
        let src = r#"
            int data[5] = { 3, 1, 4, 1, 5 };
            int sum() {
                int s = 0;
                int i;
                for (i = 0; i < 5; i++) s += data[i];
                return s;
            }
        "#;
        assert_eq!(run(src, "sum", &[]), 14);
    }

    #[test]
    fn char_arrays_and_strings() {
        let src = r#"
            char text[] = "hello";
            int length() {
                int n = 0;
                while (text[n] != 0) n++;
                return n;
            }
        "#;
        assert_eq!(run(src, "length", &[]), 5);
    }

    #[test]
    fn local_arrays_and_pointers() {
        let src = r#"
            int fill(int a[], int n) {
                int i;
                for (i = 0; i < n; i++) a[i] = i * i;
                return a[n - 1];
            }
            int driver() {
                int buf[8];
                return fill(buf, 8);
            }
        "#;
        assert_eq!(run(src, "driver", &[]), 49);
    }

    #[test]
    fn recursion_uses_fresh_frames() {
        let src = "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }";
        assert_eq!(run(src, "fib", &[10]), 55);
    }

    #[test]
    fn division_by_zero_traps() {
        let p = compile("int f(int a) { return 10 / a; }").unwrap();
        let mut m = Machine::new(&p);
        assert!(matches!(m.call("f", &[0]), Err(SimError::DivideByZero { .. })));
        assert_eq!(m.call("f", &[2]).unwrap(), 5);
    }

    #[test]
    fn fuel_limits_runaway_loops() {
        let p = compile("int f() { while (1) ; return 0; }").unwrap();
        let mut m = Machine::new(&p);
        m.set_fuel(10_000);
        assert_eq!(m.call("f", &[]), Err(SimError::OutOfFuel));
    }

    #[test]
    fn dynamic_counts_scale_with_work() {
        let p =
            compile("int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i; return s; }")
                .unwrap();
        let mut m = Machine::new(&p);
        m.call("f", &[10]).unwrap();
        let c10 = m.dynamic_insts();
        m.reset();
        m.call("f", &[100]).unwrap();
        let c100 = m.dynamic_insts();
        assert!(c100 > 5 * c10);
    }

    #[test]
    fn globals_persist_between_calls() {
        let src = r#"
            int counter = 0;
            int bump() { counter = counter + 1; return counter; }
        "#;
        let p = compile(src).unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.call("bump", &[]).unwrap(), 1);
        assert_eq!(m.call("bump", &[]).unwrap(), 2);
        assert_eq!(m.read_global_word("counter", 0), 2);
        m.reset();
        assert_eq!(m.call("bump", &[]).unwrap(), 1);
    }

    #[test]
    fn hi_lo_reconstruct_addresses() {
        let src = r#"
            int x = 77;
            int get() { return x; }
        "#;
        let p = compile(src).unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.call("get", &[]).unwrap(), 77);
    }

    #[test]
    fn unknown_function_errors() {
        let p = compile("int f() { return g(); }").unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.call("f", &[]), Err(SimError::UnknownFunction("g".to_owned())));
    }

    #[test]
    fn finalized_code_executes_identically() {
        let src = r#"
            int f(int n) {
                int acc = 0;
                int i;
                int tmp[4];
                for (i = 0; i < 4; i++) tmp[i] = n * (i + 1);
                for (i = 0; i < 4; i++) acc += tmp[i];
                return acc;
            }
        "#;
        let p = compile(src).unwrap();
        let target = vpo_opt::Target::default();
        for stage in 0..2 {
            let mut f = p.functions[0].clone();
            if stage == 1 {
                vpo_opt::batch::batch_compile(&mut f, &target);
            }
            let finalized = vpo_opt::finalize::fix_entry_exit(&f, &target);
            let mut m1 = Machine::new(&p);
            let a = m1.call_instance(&f, &[7]).unwrap();
            let mut m2 = Machine::new(&p);
            let b = m2.call_instance(&finalized, &[7]).unwrap();
            assert_eq!(a, b, "stage {stage}");
            assert_eq!(a, 7 * (1 + 2 + 3 + 4));
        }
    }

    #[test]
    fn deep_recursion_overflows_cleanly() {
        let p = compile("int f(int n) { return f(n + 1); }").unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.call("f", &[0]), Err(SimError::StackOverflow));
    }

    #[test]
    fn bad_address_is_reported() {
        // Index far outside the array: the flat memory model catches the
        // wild address (negative index on the first global).
        let p = compile("int a[4]; int f(int i) { return a[i]; }").unwrap();
        let mut m = Machine::new(&p);
        assert!(matches!(m.call("f", &[-100_000_000]), Err(SimError::BadAddress { .. })));
        assert_eq!(m.call("f", &[2]).unwrap(), 0);
    }

    #[test]
    fn bad_shift_traps() {
        let p = compile("int f(int a, int n) { return a << n; }").unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.call("f", &[1, 40]), Err(SimError::BadShift { amount: 40 }));
        assert_eq!(m.call("f", &[1, 4]).unwrap(), 16);
    }

    #[test]
    fn block_counts_reflect_loop_trips() {
        let p =
            compile("int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i; return s; }")
                .unwrap();
        let mut m = Machine::new(&p);
        let (r, counts) = m.call_instance_counted(&p.functions[0], &[5]).unwrap();
        assert_eq!(r, 10);
        // Entry executes once; some block executes once per iteration.
        assert_eq!(counts[0], 1);
        assert!(counts.contains(&5), "no block ran 5 times: {counts:?}");
        // Total dynamic = sum over blocks of entries * size.
        let total: u64 =
            p.functions[0].blocks.iter().zip(&counts).map(|(b, &n)| b.insts.len() as u64 * n).sum();
        assert_eq!(total, m.dynamic_insts());
    }

    #[test]
    fn int_min_div_minus_one_traps() {
        // `INT_MIN / -1` overflows i32; the modelled target traps exactly
        // like division by zero (same for the remainder).
        let p = compile("int f(int a, int b) { return a / b; }").unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(
            m.call("f", &[i32::MIN, -1]),
            Err(SimError::DivideByZero { function: "f".to_owned() })
        );
        let p = compile("int g(int a, int b) { return a % b; }").unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(
            m.call("g", &[i32::MIN, -1]),
            Err(SimError::DivideByZero { function: "g".to_owned() })
        );
        assert_eq!(m.call("g", &[i32::MIN, -2]).unwrap(), i32::MIN % -2);
    }

    #[test]
    fn remainder_by_zero_traps() {
        let p = compile("int f(int a) { return 7 % a; }").unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.call("f", &[0]), Err(SimError::DivideByZero { function: "f".to_owned() }));
    }

    #[test]
    fn out_of_bounds_store_is_reported() {
        // A wild *write* (not just a read) must trap with the offending
        // address; the address reported is the one the store computed.
        let p = compile("int a[4]; int f(int i) { a[i] = 1; return 0; }").unwrap();
        let mut m = Machine::new(&p);
        match m.call("f", &[500_000_000]) {
            Err(SimError::BadAddress { function, .. }) => assert_eq!(function, "f"),
            other => panic!("expected BadAddress, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_recursion_hits_step_limit_before_memory() {
        // Tail-recursive spinning with a tiny fuel budget: the step limit
        // fires (OutOfFuel), not the depth or stack guards.
        let p = compile("int f(int n) { return f(n + 1); }").unwrap();
        let mut m = Machine::new(&p);
        m.set_fuel(100);
        assert_eq!(m.call("f", &[0]), Err(SimError::OutOfFuel));
        // With ample fuel the same program exhausts the call depth.
        let mut m = Machine::new(&p);
        assert_eq!(m.call("f", &[0]), Err(SimError::StackOverflow));
    }

    #[test]
    fn big_frames_exhaust_the_stack_region() {
        // Each activation carves a 4000-word array from the stack; a small
        // memory image runs out of stack region before the depth limit.
        let p = compile(
            "int f(int n) { int buf[4000]; buf[0] = n; if (n == 0) return buf[0]; return f(n - 1) + buf[0]; }",
        )
        .unwrap();
        let mut m = Machine::with_mem_size(&p, 1 << 16);
        assert_eq!(m.call("f", &[64]), Err(SimError::OutOfStack));
        // The same program completes in the default-size machine.
        let mut m = Machine::new(&p);
        assert_eq!(m.call("f", &[64]).unwrap(), (1..=64).sum::<i32>());
    }

    #[test]
    fn globals_crc_tracks_memory_effects() {
        let src = r#"
            int log[4];
            int put(int i, int v) { log[i & 3] = v; return v; }
        "#;
        let p = compile(src).unwrap();
        let mut m = Machine::new(&p);
        let clean = m.globals_crc();
        m.call("put", &[1, 42]).unwrap();
        let dirty = m.globals_crc();
        assert_ne!(clean, dirty, "a store must change the globals digest");
        m.reset();
        assert_eq!(m.globals_crc(), clean, "reset must restore the initial digest");
        // Different machine sizes agree on the digest (it covers only the
        // globals segment, not the stack).
        let mut small = Machine::with_mem_size(&p, 1 << 16);
        assert_eq!(small.globals_crc(), clean);
        small.call("put", &[1, 42]).unwrap();
        assert_eq!(small.globals_crc(), dirty);
    }

    #[test]
    fn error_messages_render() {
        for e in [
            SimError::DivideByZero { function: "f".into() },
            SimError::BadAddress { addr: 0xFF, function: "g".into() },
            SimError::BadShift { amount: 99 },
            SimError::UnknownFunction("h".into()),
            SimError::OutOfFuel,
            SimError::StackOverflow,
            SimError::OutOfStack,
            SimError::MissingReturn("k".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn semantics_preserved_under_batch_optimization() {
        let src = r#"
            int data[8] = { 9, 2, 7, 4, 5, 6, 3, 8 };
            int max() {
                int best = data[0];
                int i;
                for (i = 1; i < 8; i++) {
                    if (data[i] > best) best = data[i];
                }
                return best;
            }
        "#;
        let p = compile(src).unwrap();
        let mut m = Machine::new(&p);
        let naive = m.call("max", &[]).unwrap();
        let naive_count = m.dynamic_insts();

        let mut opt = p.functions[0].clone();
        let target = vpo_opt::Target::default();
        vpo_opt::batch::batch_compile(&mut opt, &target);
        let mut m2 = Machine::new(&p);
        let fast = m2.call_instance(&opt, &[]).unwrap();
        assert_eq!(naive, fast);
        assert!(
            m2.dynamic_insts() < naive_count / 2,
            "optimized code should execute far fewer instructions: {} vs {naive_count}",
            m2.dynamic_insts()
        );
    }
}
