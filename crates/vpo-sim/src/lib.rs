//! RTL interpreter with dynamic instruction counting.
//!
//! The paper's eventual measure of execution efficiency is the *dynamic
//! instruction count* ("Dynamic instruction counts, unlike cycle counts,
//! are a crude approximation of execution efficiency", Section 7) — this
//! crate provides exactly that substrate: a deterministic interpreter for
//! RTL [`Program`]s that executes function instances produced by **any**
//! phase ordering and counts every executed instruction.
//!
//! Two modelling choices are worth knowing:
//!
//! * **Per-activation register state.** Each call frame has its own
//!   register file, so a call defines only its result register in the
//!   caller. This matches how the optimizer models calls and sidesteps
//!   caller-/callee-save conventions without weakening any phase
//!   interaction (calls still clobber memory).
//! * **Flat little-endian memory.** Globals are laid out from a fixed
//!   base; each frame's locals are carved from a downward-growing stack.
//!   `HI[sym]`/`LO[sym]` split the global's address exactly like the
//!   ARM idiom the paper shows in Figure 5.
//!
//! The machine has two execution engines selected by [`SimEngine`]: the
//! original tree-walking interpreter ([`SimEngine::Interp`], the
//! reference semantics) and a pre-lowered direct-threaded engine
//! ([`SimEngine::Threaded`], the default) that is bit-identical to the
//! interpreter but much faster — see the [`threaded`](self) module docs
//! and `DESIGN.md`. `tests/sim_engine_equivalence.rs` at the workspace
//! root is the differential gate holding the two engines together.
//!
//! # Example
//!
//! ```
//! let program = vpo_frontend::compile(
//!     "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }",
//! ).unwrap();
//! let mut m = vpo_sim::Machine::new(&program);
//! assert_eq!(m.call("fact", &[5]).unwrap(), 120);
//! assert!(m.dynamic_insts() > 0);
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use vpo_rtl::crc::crc32;
use vpo_rtl::{BinOp, Expr, Function, Inst, Program, Reg, SymId, Width};

pub mod stats;
mod threaded;

pub use threaded::LoweredInstance;

/// Simulator errors.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum SimError {
    /// Integer division or remainder by zero (or `INT_MIN / -1`).
    DivideByZero {
        /// Function in which the trap occurred.
        function: String,
    },
    /// A memory access outside the allocated address space.
    BadAddress {
        /// The offending address.
        addr: u32,
        /// Function in which the access occurred.
        function: String,
    },
    /// Shift amount outside `0..32` (undefined on the modelled target).
    BadShift {
        /// The offending shift amount.
        amount: i32,
    },
    /// Call to a function not present in the program.
    UnknownFunction(String),
    /// The configured instruction budget was exhausted (runaway loop).
    OutOfFuel,
    /// Call stack exceeded the configured depth.
    StackOverflow,
    /// The stack region was exhausted by local allocations.
    OutOfStack,
    /// A function fell off its last block without returning.
    MissingReturn(String),
    /// A host-side global accessor named a global not present in the
    /// program.
    UnknownGlobal(String),
    /// A host-side global accessor read or wrote outside the named
    /// global's storage.
    GlobalOutOfRange {
        /// The global's name.
        name: String,
        /// The offending element/byte index (the data length, for bulk
        /// writes).
        index: usize,
    },
}

/// One [`Machine::run_battery`] entry: the observation — `(return
/// value, globals CRC)` or the trap — plus the run's dynamic
/// instruction count.
pub type BatteryOutcome = (Result<(i32, u32), SimError>, u64);

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::DivideByZero { function } => {
                write!(f, "division by zero in `{function}`")
            }
            SimError::BadAddress { addr, function } => {
                write!(f, "bad memory access at {addr:#x} in `{function}`")
            }
            SimError::BadShift { amount } => write!(f, "shift by {amount} is undefined"),
            SimError::UnknownFunction(n) => write!(f, "call to unknown function `{n}`"),
            SimError::OutOfFuel => write!(f, "instruction budget exhausted"),
            SimError::StackOverflow => write!(f, "call stack overflow"),
            SimError::OutOfStack => write!(f, "stack region exhausted"),
            SimError::MissingReturn(n) => write!(f, "function `{n}` fell off the end"),
            SimError::UnknownGlobal(n) => write!(f, "access to unknown global `{n}`"),
            SimError::GlobalOutOfRange { name, index } => {
                write!(f, "access at index {index} is outside global `{name}`")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Address where the globals segment starts.
const GLOBAL_BASE: u32 = 0x1000;
/// Default memory size (globals + heap-less stack).
const DEFAULT_MEM: usize = 1 << 20;
/// Default dynamic-instruction budget.
const DEFAULT_FUEL: u64 = 200_000_000;
/// Default maximum call depth.
const MAX_DEPTH: usize = 256;

/// Which execution engine a [`Machine`] uses.
///
/// Both engines are observationally identical — same return values,
/// memory effects, dynamic instruction counts, block-entry counts, and
/// error classification. The interpreter is the reference semantics; the
/// threaded engine is the fast default, held to the reference by the
/// `sim_engine_equivalence` differential suite.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SimEngine {
    /// The tree-walking reference interpreter.
    Interp,
    /// The pre-lowered direct-threaded engine (default).
    #[default]
    Threaded,
}

/// An RTL machine: memory, globals layout, and instruction counters.
#[derive(Clone)]
pub struct Machine<'p> {
    program: &'p Program,
    mem: Vec<u8>,
    global_addr: Vec<u32>,
    stack_top: u32,
    dynamic: u64,
    fuel: u64,
    engine: SimEngine,
    functions: HashMap<&'p str, &'p Function>,
    /// Per-block entry counters for the *outermost* frame of
    /// [`Machine::call_instance_counted`], if one is active.
    block_counts: Option<Vec<u64>>,
    /// Program-function index by name, mirroring `functions` (same
    /// last-definition-wins behavior for duplicate names).
    fn_index: HashMap<&'p str, u32>,
    /// Lazily lowered program functions (threaded engine callees).
    lowered_fns: Vec<Option<Arc<threaded::LoweredFunction>>>,
    /// Block-level lowering cache; holds pure code, so it survives
    /// [`Machine::reset`] and is shared across instances.
    lower_cache: threaded::LowerCache,
    /// Scratch pools for threaded frames (register files, local-address
    /// tables) and postfix evaluation; purely an allocation-reuse detail.
    regfile_pool: Vec<Vec<i32>>,
    local_pool: Vec<Vec<u32>>,
    eval_stack: Vec<i32>,
    /// Batched-retirement count awaiting a flush to [`stats`].
    pending_retires: u64,
}

impl<'p> Machine<'p> {
    /// Creates a machine for `program` with default memory and fuel, and
    /// initializes global storage.
    pub fn new(program: &'p Program) -> Self {
        Machine::with_mem_size(program, DEFAULT_MEM)
    }

    /// Creates a machine with a custom memory image size. Smaller images
    /// make [`Machine::reset`] (which zeroes the whole image) much cheaper
    /// — the differential oracle runs tens of thousands of short
    /// simulations and resets between every one.
    ///
    /// # Panics
    ///
    /// Panics if the program's globals do not fit in half of `mem_size`.
    pub fn with_mem_size(program: &'p Program, mem_size: usize) -> Self {
        let mut m = Machine {
            program,
            mem: vec![0; mem_size],
            global_addr: Vec::new(),
            stack_top: mem_size as u32,
            dynamic: 0,
            fuel: DEFAULT_FUEL,
            engine: SimEngine::default(),
            functions: program.functions.iter().map(|f| (f.name.as_str(), f)).collect(),
            block_counts: None,
            fn_index: program
                .functions
                .iter()
                .enumerate()
                .map(|(i, f)| (f.name.as_str(), i as u32))
                .collect(),
            lowered_fns: vec![None; program.functions.len()],
            lower_cache: threaded::LowerCache::default(),
            regfile_pool: Vec::new(),
            local_pool: Vec::new(),
            eval_stack: Vec::new(),
            pending_retires: 0,
        };
        m.layout_globals();
        m
    }

    /// Selects the execution engine (default [`SimEngine::Threaded`]).
    pub fn set_engine(&mut self, engine: SimEngine) {
        self.engine = engine;
    }

    /// The currently selected execution engine.
    pub fn engine(&self) -> SimEngine {
        self.engine
    }

    /// Replaces the instruction budget (default 200M).
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Dynamic instructions executed so far.
    pub fn dynamic_insts(&self) -> u64 {
        self.dynamic
    }

    /// Restores the machine to its initial observable state: memory is
    /// zeroed and globals re-initialized, the dynamic counter returns to
    /// zero (which also restores the full fuel budget — the fuel *cap*
    /// set by [`Machine::set_fuel`] is configuration, not run state), and
    /// any in-progress block-count accumulator is dropped.
    ///
    /// Deliberately *not* reset: the configured fuel cap, and the
    /// threaded engine's lowering caches — those hold pure code, and
    /// keeping them warm across a battery of resets is the point of the
    /// block cache. `stack_top` needs no restore here because every
    /// public call path saves and restores it, and condition codes and
    /// registers are per-frame state that cannot outlive a call.
    pub fn reset(&mut self) {
        self.mem.iter_mut().for_each(|b| *b = 0);
        self.layout_globals();
        self.dynamic = 0;
        self.block_counts = None;
    }

    fn layout_globals(&mut self) {
        self.global_addr.clear();
        let mut addr = GLOBAL_BASE;
        for g in &self.program.globals {
            // Word-align each global.
            addr = (addr + 3) & !3;
            self.global_addr.push(addr);
            let base = addr as usize;
            if !g.init_bytes.is_empty() {
                self.mem[base..base + g.init_bytes.len()].copy_from_slice(&g.init_bytes);
            } else {
                for (i, w) in g.init.iter().enumerate() {
                    self.mem[base + 4 * i..base + 4 * i + 4].copy_from_slice(&w.to_le_bytes());
                }
            }
            addr += g.size.max(1);
        }
        assert!((addr as usize) < self.mem.len() / 2, "globals overflow the memory image");
    }

    /// Address of a global by symbol id.
    pub fn global_address(&self, sym: SymId) -> u32 {
        self.global_addr[sym.0 as usize]
    }

    /// CRC-32 digest of the whole globals segment — a summary of every
    /// memory effect execution has left behind. Two runs whose return
    /// values and globals digests both match are observationally
    /// identical to this machine's memory model (per-activation registers
    /// and the stack do not outlive a call).
    pub fn globals_crc(&self) -> u32 {
        let end = self
            .program
            .globals
            .iter()
            .zip(&self.global_addr)
            .map(|(g, &a)| a + g.size.max(1))
            .max()
            .unwrap_or(GLOBAL_BASE);
        crc32(&self.mem[GLOBAL_BASE as usize..end as usize])
    }

    /// Base address and size (in bytes) of the named global, range-checked
    /// by the host-side accessors below. These report errors the same way
    /// the simulated OOB store path does, rather than panicking: a bad
    /// workload index in an oracle battery is data, not a crash.
    fn global_span(&self, name: &str) -> Result<(usize, usize), SimError> {
        let sym = self
            .program
            .global_by_name(name)
            .ok_or_else(|| SimError::UnknownGlobal(name.to_owned()))?;
        let g = &self.program.globals[sym.0 as usize];
        Ok((self.global_addr[sym.0 as usize] as usize, g.size.max(1) as usize))
    }

    /// Reads word `index` of the named global.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownGlobal`] if no such global exists,
    /// [`SimError::GlobalOutOfRange`] if the word lies outside it.
    pub fn read_global_word(&self, name: &str, index: usize) -> Result<i32, SimError> {
        let (base, size) = self.global_span(name)?;
        let off = 4 * index;
        if off + 4 > size {
            return Err(SimError::GlobalOutOfRange { name: name.to_owned(), index });
        }
        let a = base + off;
        Ok(i32::from_le_bytes(self.mem[a..a + 4].try_into().unwrap()))
    }

    /// Writes word `index` of the named global.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::read_global_word`].
    pub fn write_global_word(
        &mut self,
        name: &str,
        index: usize,
        value: i32,
    ) -> Result<(), SimError> {
        let (base, size) = self.global_span(name)?;
        let off = 4 * index;
        if off + 4 > size {
            return Err(SimError::GlobalOutOfRange { name: name.to_owned(), index });
        }
        let a = base + off;
        self.mem[a..a + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Reads byte `index` of the named global (for `char` arrays).
    ///
    /// # Errors
    ///
    /// Same as [`Machine::read_global_word`].
    pub fn read_global_byte(&self, name: &str, index: usize) -> Result<u8, SimError> {
        let (base, size) = self.global_span(name)?;
        if index >= size {
            return Err(SimError::GlobalOutOfRange { name: name.to_owned(), index });
        }
        Ok(self.mem[base + index])
    }

    /// Writes raw bytes into the named global.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownGlobal`] if no such global exists,
    /// [`SimError::GlobalOutOfRange`] if `data` does not fit (the
    /// reported index is `data.len()`).
    pub fn write_global_bytes(&mut self, name: &str, data: &[u8]) -> Result<(), SimError> {
        let (base, size) = self.global_span(name)?;
        if data.len() > size {
            return Err(SimError::GlobalOutOfRange { name: name.to_owned(), index: data.len() });
        }
        self.mem[base..base + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Calls function `name` with `args`, returning its value (functions
    /// without an explicit value return 0).
    ///
    /// # Errors
    ///
    /// Any [`SimError`] raised during execution; memory contents at that
    /// point are left as they were (useful for debugging).
    pub fn call(&mut self, name: &str, args: &[i32]) -> Result<i32, SimError> {
        let stack_top = self.stack_top;
        let r = match self.engine {
            SimEngine::Interp => self.call_inner(name, args, 0),
            SimEngine::Threaded => self.call_threaded(name, args, 0),
        };
        self.stack_top = stack_top;
        self.flush_sim_stats();
        r
    }

    /// Calls a specific function *instance* (e.g. one produced by a custom
    /// phase ordering) instead of the program's own copy. Other functions
    /// called by `f` still resolve through the program.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::call`].
    pub fn call_instance(&mut self, f: &Function, args: &[i32]) -> Result<i32, SimError> {
        match self.engine {
            SimEngine::Interp => {
                let stack_top = self.stack_top;
                let r = self.exec(f, args, 0);
                self.stack_top = stack_top;
                r
            }
            SimEngine::Threaded => {
                let li = self.lower_instance(f);
                self.call_lowered(&li, args)
            }
        }
    }

    /// Pre-lowers a function instance for the threaded engine. Lowering
    /// goes through the machine's block cache, so near-identical
    /// instances share almost all of their lowered blocks; the returned
    /// handle amortizes even the per-block cache probes across a battery
    /// of [`Machine::call_lowered`] runs.
    pub fn lower_instance(&mut self, f: &Function) -> LoweredInstance {
        let lf = threaded::lower_function(f, &self.fn_index, &mut self.lower_cache);
        self.flush_sim_stats();
        LoweredInstance(lf)
    }

    /// Calls a pre-lowered instance on the threaded engine (regardless of
    /// the machine's configured default engine).
    ///
    /// # Errors
    ///
    /// Same as [`Machine::call`].
    pub fn call_lowered(&mut self, li: &LoweredInstance, args: &[i32]) -> Result<i32, SimError> {
        let stack_top = self.stack_top;
        let r = self.exec_threaded(&li.0, args, 0);
        self.stack_top = stack_top;
        self.flush_sim_stats();
        r
    }

    /// Runs a function instance over a whole battery of argument
    /// vectors, returning for each entry the observation — `(return
    /// value, globals CRC)` or the trap — plus that run's dynamic
    /// instruction count. The machine is [`Machine::reset`] before each
    /// entry and `fuel` caps every run independently. Under the
    /// threaded engine the instance is lowered exactly once through the
    /// shared block cache, so batteries over near-identical instances
    /// (the enumeration signature workload) pay the lowering cost only
    /// for blocks never seen before.
    pub fn run_battery(
        &mut self,
        f: &Function,
        inputs: &[Vec<i32>],
        fuel: u64,
    ) -> Vec<BatteryOutcome> {
        self.set_fuel(fuel);
        let lowered = match self.engine {
            SimEngine::Threaded => Some(self.lower_instance(f)),
            SimEngine::Interp => None,
        };
        let mut out = Vec::with_capacity(inputs.len());
        for args in inputs {
            self.reset();
            let r = match &lowered {
                Some(li) => self.call_lowered(li, args),
                None => self.call_instance(f, args),
            };
            out.push((r.map(|v| (v, self.globals_crc())), self.dynamic_insts()));
        }
        out
    }

    /// [`Machine::call_instance_counted`] for a pre-lowered instance.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::call`].
    pub fn call_lowered_counted(
        &mut self,
        li: &LoweredInstance,
        args: &[i32],
    ) -> Result<(i32, Vec<u64>), SimError> {
        let stack_top = self.stack_top;
        self.block_counts = Some(vec![0u64; li.0.blocks.len()]);
        let r = self.exec_threaded(&li.0, args, 0);
        let counts = self.block_counts.take().unwrap_or_default();
        self.stack_top = stack_top;
        self.flush_sim_stats();
        Ok((r?, counts))
    }

    fn flush_sim_stats(&mut self) {
        stats::flush(
            std::mem::take(&mut self.lower_cache.pending_lowered),
            std::mem::take(&mut self.lower_cache.pending_hits),
            std::mem::take(&mut self.pending_retires),
        );
    }

    /// Like [`Machine::call_instance`], but additionally returns how many
    /// times each basic block of `f` was *entered* (indexed by block
    /// position). This is the measurement behind the paper's Section 7
    /// idea: instances sharing a control flow execute their corresponding
    /// blocks the same number of times, so one execution per distinct
    /// control flow suffices to infer every instance's dynamic count as
    /// `Σ entries(block) × len(block)`.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::call`].
    pub fn call_instance_counted(
        &mut self,
        f: &Function,
        args: &[i32],
    ) -> Result<(i32, Vec<u64>), SimError> {
        match self.engine {
            SimEngine::Interp => {
                let stack_top = self.stack_top;
                self.block_counts = Some(vec![0u64; f.blocks.len()]);
                let r = self.exec(f, args, 0);
                let counts = self.block_counts.take().unwrap_or_default();
                self.stack_top = stack_top;
                Ok((r?, counts))
            }
            SimEngine::Threaded => {
                let li = self.lower_instance(f);
                self.call_lowered_counted(&li, args)
            }
        }
    }

    fn call_inner(&mut self, name: &str, args: &[i32], depth: usize) -> Result<i32, SimError> {
        let Some(&f) = self.functions.get(name) else {
            return Err(SimError::UnknownFunction(name.to_owned()));
        };
        self.exec(f, args, depth)
    }

    fn exec(&mut self, f: &Function, args: &[i32], depth: usize) -> Result<i32, SimError> {
        if depth > MAX_DEPTH {
            return Err(SimError::StackOverflow);
        }
        // Frame layout: locals carved from the stack.
        let frame_size: u32 = f.locals.iter().map(|l| (l.size + 3) & !3).sum();
        if frame_size + 64 > self.stack_top {
            return Err(SimError::OutOfStack);
        }
        let frame_base = self.stack_top - frame_size;
        let saved_top = self.stack_top;
        self.stack_top = frame_base;
        let mut local_addr = Vec::with_capacity(f.locals.len());
        {
            let mut a = frame_base;
            for l in &f.locals {
                local_addr.push(a);
                a += (l.size + 3) & !3;
            }
        }

        let mut frame = Frame { regs: HashMap::new(), cc: (0, 0), local_addr };
        // The stack pointer convention for *finalized* code (the fix
        // entry/exit phase): register 13 starts at the frame's upper bound,
        // so `r13 - frame_size` addresses exactly the region this
        // interpreter reserved for the locals. Unfinalized code never
        // touches r13 (it is outside the allocatable range).
        frame.regs.insert(Reg::hard(13), saved_top as i32);
        for (i, &p) in f.params.iter().enumerate() {
            frame.regs.insert(p, args.get(i).copied().unwrap_or(0));
        }

        let mut bi = 0usize;
        let mut ii = 0usize;
        let counting = depth == 0 && self.block_counts.is_some();
        if counting {
            if let Some(c) = self.block_counts.as_mut() {
                if let Some(slot) = c.get_mut(0) {
                    *slot += 1;
                }
            }
        }
        let result = loop {
            let Some(block) = f.blocks.get(bi) else {
                break Err(SimError::MissingReturn(f.name.clone()));
            };
            let Some(inst) = block.insts.get(ii) else {
                // Fall through to the next positional block.
                bi += 1;
                ii = 0;
                if counting {
                    if let Some(c) = self.block_counts.as_mut() {
                        if let Some(slot) = c.get_mut(bi) {
                            *slot += 1;
                        }
                    }
                }
                continue;
            };
            if self.dynamic >= self.fuel {
                break Err(SimError::OutOfFuel);
            }
            self.dynamic += 1;
            ii += 1;
            match inst {
                Inst::Assign { dst, src } => {
                    let v = self.eval(src, &frame, f)?;
                    frame.regs.insert(*dst, v);
                }
                Inst::Store { width, addr, src } => {
                    let a = self.eval(addr, &frame, f)? as u32;
                    let v = self.eval(src, &frame, f)?;
                    self.write(a, v, *width, &f.name)?;
                }
                Inst::Compare { lhs, rhs } => {
                    let a = self.eval(lhs, &frame, f)?;
                    let b = self.eval(rhs, &frame, f)?;
                    frame.cc = (a, b);
                }
                Inst::CondBranch { cond, target } => {
                    if cond.eval(frame.cc.0, frame.cc.1) {
                        bi = f.block_index(*target).expect("dangling branch target");
                        ii = 0;
                        if counting {
                            if let Some(c) = self.block_counts.as_mut() {
                                c[bi] += 1;
                            }
                        }
                    }
                }
                Inst::Jump { target } => {
                    bi = f.block_index(*target).expect("dangling jump target");
                    ii = 0;
                    if counting {
                        if let Some(c) = self.block_counts.as_mut() {
                            c[bi] += 1;
                        }
                    }
                }
                Inst::Call { callee, args: call_args, dst } => {
                    let mut vals = Vec::with_capacity(call_args.len());
                    for a in call_args {
                        vals.push(self.eval(a, &frame, f)?);
                    }
                    let r = self.call_inner(callee, &vals, depth + 1)?;
                    if let Some(d) = dst {
                        frame.regs.insert(*d, r);
                    }
                }
                Inst::Return { value } => {
                    let v = match value {
                        Some(e) => self.eval(e, &frame, f)?,
                        None => 0,
                    };
                    break Ok(v);
                }
            }
        };
        self.stack_top = saved_top;
        result
    }

    fn eval(&self, e: &Expr, frame: &Frame, f: &Function) -> Result<i32, SimError> {
        Ok(match e {
            Expr::Reg(r) => frame.regs.get(r).copied().unwrap_or(0),
            Expr::Const(c) => *c as i32,
            Expr::Hi(sym) => (self.global_addr[sym.0 as usize] & !0xFFF) as i32,
            Expr::Lo(sym) => (self.global_addr[sym.0 as usize] & 0xFFF) as i32,
            Expr::LocalAddr(l) => frame.local_addr[l.0 as usize] as i32,
            Expr::Un(op, a) => op.eval(self.eval(a, frame, f)?),
            Expr::Bin(op, a, b) => {
                let x = self.eval(a, frame, f)?;
                let y = self.eval(b, frame, f)?;
                match op.eval(x, y) {
                    Some(v) => v,
                    None => {
                        return Err(match op {
                            BinOp::Div | BinOp::Rem => {
                                SimError::DivideByZero { function: f.name.clone() }
                            }
                            _ => SimError::BadShift { amount: y },
                        })
                    }
                }
            }
            Expr::Load(width, a) => {
                let addr = self.eval(a, frame, f)? as u32;
                self.read(addr, *width, &f.name)?
            }
        })
    }

    fn read(&self, addr: u32, width: Width, fname: &str) -> Result<i32, SimError> {
        let a = addr as usize;
        match width {
            Width::Byte => self
                .mem
                .get(a)
                .map(|&b| b as i32)
                .ok_or_else(|| SimError::BadAddress { addr, function: fname.to_owned() }),
            Width::Word => {
                if a + 4 <= self.mem.len() {
                    Ok(i32::from_le_bytes(self.mem[a..a + 4].try_into().unwrap()))
                } else {
                    Err(SimError::BadAddress { addr, function: fname.to_owned() })
                }
            }
        }
    }

    fn write(&mut self, addr: u32, v: i32, width: Width, fname: &str) -> Result<(), SimError> {
        let a = addr as usize;
        match width {
            Width::Byte => match self.mem.get_mut(a) {
                Some(b) => {
                    *b = v as u8;
                    Ok(())
                }
                None => Err(SimError::BadAddress { addr, function: fname.to_owned() }),
            },
            Width::Word => {
                if a + 4 <= self.mem.len() {
                    self.mem[a..a + 4].copy_from_slice(&v.to_le_bytes());
                    Ok(())
                } else {
                    Err(SimError::BadAddress { addr, function: fname.to_owned() })
                }
            }
        }
    }
}

struct Frame {
    regs: HashMap<Reg, i32>,
    cc: (i32, i32),
    local_addr: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpo_frontend::compile;

    fn run(src: &str, func: &str, args: &[i32]) -> i32 {
        let p = compile(src).unwrap();
        let mut m = Machine::new(&p);
        m.call(func, args).unwrap()
    }

    #[test]
    fn arithmetic_and_calls() {
        let src = r#"
            int add(int a, int b) { return a + b; }
            int twice(int x) { return add(x, x); }
        "#;
        assert_eq!(run(src, "twice", &[21]), 42);
    }

    #[test]
    fn loops_and_arrays() {
        let src = r#"
            int data[5] = { 3, 1, 4, 1, 5 };
            int sum() {
                int s = 0;
                int i;
                for (i = 0; i < 5; i++) s += data[i];
                return s;
            }
        "#;
        assert_eq!(run(src, "sum", &[]), 14);
    }

    #[test]
    fn char_arrays_and_strings() {
        let src = r#"
            char text[] = "hello";
            int length() {
                int n = 0;
                while (text[n] != 0) n++;
                return n;
            }
        "#;
        assert_eq!(run(src, "length", &[]), 5);
    }

    #[test]
    fn local_arrays_and_pointers() {
        let src = r#"
            int fill(int a[], int n) {
                int i;
                for (i = 0; i < n; i++) a[i] = i * i;
                return a[n - 1];
            }
            int driver() {
                int buf[8];
                return fill(buf, 8);
            }
        "#;
        assert_eq!(run(src, "driver", &[]), 49);
    }

    #[test]
    fn recursion_uses_fresh_frames() {
        let src = "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }";
        assert_eq!(run(src, "fib", &[10]), 55);
    }

    #[test]
    fn division_by_zero_traps() {
        let p = compile("int f(int a) { return 10 / a; }").unwrap();
        let mut m = Machine::new(&p);
        assert!(matches!(m.call("f", &[0]), Err(SimError::DivideByZero { .. })));
        assert_eq!(m.call("f", &[2]).unwrap(), 5);
    }

    #[test]
    fn fuel_limits_runaway_loops() {
        let p = compile("int f() { while (1) ; return 0; }").unwrap();
        let mut m = Machine::new(&p);
        m.set_fuel(10_000);
        assert_eq!(m.call("f", &[]), Err(SimError::OutOfFuel));
    }

    #[test]
    fn dynamic_counts_scale_with_work() {
        let p =
            compile("int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i; return s; }")
                .unwrap();
        let mut m = Machine::new(&p);
        m.call("f", &[10]).unwrap();
        let c10 = m.dynamic_insts();
        m.reset();
        m.call("f", &[100]).unwrap();
        let c100 = m.dynamic_insts();
        assert!(c100 > 5 * c10);
    }

    #[test]
    fn globals_persist_between_calls() {
        let src = r#"
            int counter = 0;
            int bump() { counter = counter + 1; return counter; }
        "#;
        let p = compile(src).unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.call("bump", &[]).unwrap(), 1);
        assert_eq!(m.call("bump", &[]).unwrap(), 2);
        assert_eq!(m.read_global_word("counter", 0).unwrap(), 2);
        m.reset();
        assert_eq!(m.call("bump", &[]).unwrap(), 1);
    }

    #[test]
    fn hi_lo_reconstruct_addresses() {
        let src = r#"
            int x = 77;
            int get() { return x; }
        "#;
        let p = compile(src).unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.call("get", &[]).unwrap(), 77);
    }

    #[test]
    fn unknown_function_errors() {
        let p = compile("int f() { return g(); }").unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.call("f", &[]), Err(SimError::UnknownFunction("g".to_owned())));
    }

    #[test]
    fn finalized_code_executes_identically() {
        let src = r#"
            int f(int n) {
                int acc = 0;
                int i;
                int tmp[4];
                for (i = 0; i < 4; i++) tmp[i] = n * (i + 1);
                for (i = 0; i < 4; i++) acc += tmp[i];
                return acc;
            }
        "#;
        let p = compile(src).unwrap();
        let target = vpo_opt::Target::default();
        for stage in 0..2 {
            let mut f = p.functions[0].clone();
            if stage == 1 {
                vpo_opt::batch::batch_compile(&mut f, &target);
            }
            let finalized = vpo_opt::finalize::fix_entry_exit(&f, &target);
            let mut m1 = Machine::new(&p);
            let a = m1.call_instance(&f, &[7]).unwrap();
            let mut m2 = Machine::new(&p);
            let b = m2.call_instance(&finalized, &[7]).unwrap();
            assert_eq!(a, b, "stage {stage}");
            assert_eq!(a, 7 * (1 + 2 + 3 + 4));
        }
    }

    #[test]
    fn deep_recursion_overflows_cleanly() {
        let p = compile("int f(int n) { return f(n + 1); }").unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.call("f", &[0]), Err(SimError::StackOverflow));
    }

    #[test]
    fn bad_address_is_reported() {
        // Index far outside the array: the flat memory model catches the
        // wild address (negative index on the first global).
        let p = compile("int a[4]; int f(int i) { return a[i]; }").unwrap();
        let mut m = Machine::new(&p);
        assert!(matches!(m.call("f", &[-100_000_000]), Err(SimError::BadAddress { .. })));
        assert_eq!(m.call("f", &[2]).unwrap(), 0);
    }

    #[test]
    fn bad_shift_traps() {
        let p = compile("int f(int a, int n) { return a << n; }").unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.call("f", &[1, 40]), Err(SimError::BadShift { amount: 40 }));
        assert_eq!(m.call("f", &[1, 4]).unwrap(), 16);
    }

    #[test]
    fn block_counts_reflect_loop_trips() {
        let p =
            compile("int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i; return s; }")
                .unwrap();
        let mut m = Machine::new(&p);
        let (r, counts) = m.call_instance_counted(&p.functions[0], &[5]).unwrap();
        assert_eq!(r, 10);
        // Entry executes once; some block executes once per iteration.
        assert_eq!(counts[0], 1);
        assert!(counts.contains(&5), "no block ran 5 times: {counts:?}");
        // Total dynamic = sum over blocks of entries * size.
        let total: u64 =
            p.functions[0].blocks.iter().zip(&counts).map(|(b, &n)| b.insts.len() as u64 * n).sum();
        assert_eq!(total, m.dynamic_insts());
    }

    #[test]
    fn int_min_div_minus_one_traps() {
        // `INT_MIN / -1` overflows i32; the modelled target traps exactly
        // like division by zero (same for the remainder).
        let p = compile("int f(int a, int b) { return a / b; }").unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(
            m.call("f", &[i32::MIN, -1]),
            Err(SimError::DivideByZero { function: "f".to_owned() })
        );
        let p = compile("int g(int a, int b) { return a % b; }").unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(
            m.call("g", &[i32::MIN, -1]),
            Err(SimError::DivideByZero { function: "g".to_owned() })
        );
        assert_eq!(m.call("g", &[i32::MIN, -2]).unwrap(), i32::MIN % -2);
    }

    #[test]
    fn remainder_by_zero_traps() {
        let p = compile("int f(int a) { return 7 % a; }").unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.call("f", &[0]), Err(SimError::DivideByZero { function: "f".to_owned() }));
    }

    #[test]
    fn out_of_bounds_store_is_reported() {
        // A wild *write* (not just a read) must trap with the offending
        // address; the address reported is the one the store computed.
        let p = compile("int a[4]; int f(int i) { a[i] = 1; return 0; }").unwrap();
        let mut m = Machine::new(&p);
        match m.call("f", &[500_000_000]) {
            Err(SimError::BadAddress { function, .. }) => assert_eq!(function, "f"),
            other => panic!("expected BadAddress, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_recursion_hits_step_limit_before_memory() {
        // Tail-recursive spinning with a tiny fuel budget: the step limit
        // fires (OutOfFuel), not the depth or stack guards.
        let p = compile("int f(int n) { return f(n + 1); }").unwrap();
        let mut m = Machine::new(&p);
        m.set_fuel(100);
        assert_eq!(m.call("f", &[0]), Err(SimError::OutOfFuel));
        // With ample fuel the same program exhausts the call depth.
        let mut m = Machine::new(&p);
        assert_eq!(m.call("f", &[0]), Err(SimError::StackOverflow));
    }

    #[test]
    fn big_frames_exhaust_the_stack_region() {
        // Each activation carves a 4000-word array from the stack; a small
        // memory image runs out of stack region before the depth limit.
        let p = compile(
            "int f(int n) { int buf[4000]; buf[0] = n; if (n == 0) return buf[0]; return f(n - 1) + buf[0]; }",
        )
        .unwrap();
        let mut m = Machine::with_mem_size(&p, 1 << 16);
        assert_eq!(m.call("f", &[64]), Err(SimError::OutOfStack));
        // The same program completes in the default-size machine.
        let mut m = Machine::new(&p);
        assert_eq!(m.call("f", &[64]).unwrap(), (1..=64).sum::<i32>());
    }

    #[test]
    fn globals_crc_tracks_memory_effects() {
        let src = r#"
            int log[4];
            int put(int i, int v) { log[i & 3] = v; return v; }
        "#;
        let p = compile(src).unwrap();
        let mut m = Machine::new(&p);
        let clean = m.globals_crc();
        m.call("put", &[1, 42]).unwrap();
        let dirty = m.globals_crc();
        assert_ne!(clean, dirty, "a store must change the globals digest");
        m.reset();
        assert_eq!(m.globals_crc(), clean, "reset must restore the initial digest");
        // Different machine sizes agree on the digest (it covers only the
        // globals segment, not the stack).
        let mut small = Machine::with_mem_size(&p, 1 << 16);
        assert_eq!(small.globals_crc(), clean);
        small.call("put", &[1, 42]).unwrap();
        assert_eq!(small.globals_crc(), dirty);
    }

    #[test]
    fn error_messages_render() {
        for e in [
            SimError::DivideByZero { function: "f".into() },
            SimError::BadAddress { addr: 0xFF, function: "g".into() },
            SimError::BadShift { amount: 99 },
            SimError::UnknownFunction("h".into()),
            SimError::OutOfFuel,
            SimError::StackOverflow,
            SimError::OutOfStack,
            SimError::MissingReturn("k".into()),
            SimError::UnknownGlobal("m".into()),
            SimError::GlobalOutOfRange { name: "n".into(), index: 7 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    /// Everything a run can observe from one call, for differential
    /// engine comparison.
    fn observe(m: &mut Machine, f: &Function, args: &[i32]) -> (Result<i32, SimError>, u64, u32) {
        m.reset();
        m.set_fuel(2_000_000);
        let r = m.call_instance(f, args);
        (r, m.dynamic_insts(), m.globals_crc())
    }

    fn assert_engines_agree(p: &vpo_rtl::Program, f: &Function, args: &[i32]) {
        let mut mi = Machine::new(p);
        mi.set_engine(SimEngine::Interp);
        let mut mt = Machine::new(p);
        mt.set_engine(SimEngine::Threaded);
        assert_eq!(observe(&mut mi, f, args), observe(&mut mt, f, args), "{}({args:?})", f.name);
    }

    #[test]
    fn engines_agree_on_a_mixed_corpus() {
        let srcs = [
            "int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i; return s; }",
            "int f(int n) { int i; int s = 0; for (i = n; i > 0; i--) s = s * 2 + i; return s; }",
            "int g(int a, int b) { if (b == 0) return a; return g(b, a % b); } int f(int a, int b) { return g(a, b); }",
            "int a[8]; int f(int i) { a[i & 7] = i; return a[(i + 1) & 7]; }",
            "int f(int a, int n) { return a << n; }",
            "int f(int a, int b) { return a / b; }",
            "int f(int n) { while (1) { n = n + 1; if (n > 1000) return n; } return 0; }",
        ];
        for src in srcs {
            let p = compile(src).unwrap();
            for args in [[0, 0], [5, 3], [100, -1], [i32::MIN, -1], [40, 1]] {
                assert_engines_agree(&p, p.function("f").unwrap(), &args);
            }
        }
    }

    #[test]
    fn engines_agree_on_block_counts() {
        let p =
            compile("int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i; return s; }")
                .unwrap();
        let f = &p.functions[0];
        for n in [0, 1, 5, 1000] {
            let mut mi = Machine::new(&p);
            mi.set_engine(SimEngine::Interp);
            let mut mt = Machine::new(&p);
            mt.set_engine(SimEngine::Threaded);
            let a = mi.call_instance_counted(f, &[n]).unwrap();
            let b = mt.call_instance_counted(f, &[n]).unwrap();
            assert_eq!(a, b, "n={n}");
            assert_eq!(mi.dynamic_insts(), mt.dynamic_insts(), "n={n}");
        }
    }

    #[test]
    fn fresh_and_reset_machines_are_indistinguishable() {
        // The satellite regression for the `reset` audit: a battery that
        // resets between runs must observe exactly what a battery of
        // fresh machines would — same dynamic counts, same globals CRC —
        // including after trapping calls, counted calls, and fuel-starved
        // calls, on both engines.
        let src = r#"
            int log[4];
            int f(int i, int v) { log[i & 3] = log[i & 3] + v; return log[i & 3] / (v - 1); }
        "#;
        let p = compile(src).unwrap();
        let batteries: [&[i32]; 4] = [&[0, 5], &[1, 1], &[2, -7], &[3, 2]];
        for engine in [SimEngine::Interp, SimEngine::Threaded] {
            let mut reused = Machine::new(&p);
            reused.set_engine(engine);
            // Perturb the reused machine first: a counted call and a
            // fuel-starved call, then restore the default fuel.
            reused.set_fuel(3);
            assert_eq!(reused.call_instance(&p.functions[0], &[0, 2]), Err(SimError::OutOfFuel));
            reused.set_fuel(200_000_000);
            let _ = reused.call_instance_counted(&p.functions[0], &[1, 3]).unwrap();
            for args in batteries {
                reused.reset();
                let got = (reused.call("f", args), reused.dynamic_insts(), reused.globals_crc());
                let mut fresh = Machine::new(&p);
                fresh.set_engine(engine);
                let want = (fresh.call("f", args), fresh.dynamic_insts(), fresh.globals_crc());
                assert_eq!(got, want, "{engine:?} {args:?}");
            }
        }
    }

    #[test]
    fn global_accessors_error_at_the_boundary() {
        let p = compile("int a[4]; char s[6]; int f() { return a[0]; }").unwrap();
        let mut m = Machine::new(&p);
        // Words: indices 0..4 are valid for a 16-byte global.
        m.write_global_word("a", 3, 7).unwrap();
        assert_eq!(m.read_global_word("a", 3).unwrap(), 7);
        assert_eq!(
            m.read_global_word("a", 4),
            Err(SimError::GlobalOutOfRange { name: "a".into(), index: 4 })
        );
        assert_eq!(
            m.write_global_word("a", 4, 1),
            Err(SimError::GlobalOutOfRange { name: "a".into(), index: 4 })
        );
        // Bytes: the last in-range byte works, one past errors.
        assert_eq!(m.read_global_byte("s", 5).unwrap(), 0);
        assert_eq!(
            m.read_global_byte("s", 6),
            Err(SimError::GlobalOutOfRange { name: "s".into(), index: 6 })
        );
        // Bulk writes: exact fit works, one byte over errors.
        m.write_global_bytes("s", b"abcdef").unwrap();
        assert_eq!(m.read_global_byte("s", 0).unwrap(), b'a');
        assert_eq!(
            m.write_global_bytes("s", b"abcdefg"),
            Err(SimError::GlobalOutOfRange { name: "s".into(), index: 7 })
        );
        // Unknown globals are their own error, for every accessor.
        assert_eq!(m.read_global_word("nope", 0), Err(SimError::UnknownGlobal("nope".into())));
        assert_eq!(m.write_global_word("nope", 0, 1), Err(SimError::UnknownGlobal("nope".into())));
        assert_eq!(m.read_global_byte("nope", 0), Err(SimError::UnknownGlobal("nope".into())));
        assert_eq!(m.write_global_bytes("nope", b"x"), Err(SimError::UnknownGlobal("nope".into())));
    }

    #[test]
    fn fuel_boundary_is_exact_on_both_engines() {
        // The satellite off-by-one gate: with fuel set to the exact
        // dynamic count the call succeeds; one unit less must be
        // OutOfFuel, at the same partial dynamic count, on both engines.
        let srcs = [
            "int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i; return s; }",
            "int g(int n) { return n * 2; } int f(int n) { return g(n) + g(n + 1); }",
            "int f(int n) { return n + 1; }",
        ];
        for src in srcs {
            let p = compile(src).unwrap();
            let f = p.function("f").unwrap();
            let mut exact = Machine::new(&p);
            exact.call_instance(f, &[13]).unwrap();
            let n = exact.dynamic_insts();
            assert!(n > 0);
            for engine in [SimEngine::Interp, SimEngine::Threaded] {
                let mut m = Machine::new(&p);
                m.set_engine(engine);
                m.set_fuel(n);
                assert!(m.call_instance(f, &[13]).is_ok(), "{engine:?}: exact fuel must pass");
                assert_eq!(m.dynamic_insts(), n, "{engine:?}");
                m.reset();
                m.set_fuel(n - 1);
                assert_eq!(
                    m.call_instance(f, &[13]),
                    Err(SimError::OutOfFuel),
                    "{engine:?}: n-1 fuel must exhaust"
                );
                assert_eq!(m.dynamic_insts(), n - 1, "{engine:?}: all budgeted insts executed");
            }
        }
    }

    #[test]
    fn rep_fast_path_is_exact() {
        // Counting loops that hit the closed-form rep path must match the
        // interpreter on result, dynamic count, and block counts — also
        // for descending loops, empty trips, and bounds near i32 limits
        // (where the fast path falls back rather than mis-wrap).
        let cases = [
            (
                "int f(int n) { int i; int s = 0; for (i = 0; i < n; i++) s += 1; return s + i; }",
                vec![0, 1, 7, 100000],
            ),
            (
                "int f(int n) { int i; int s = 0; for (i = n; i > 0; i--) s += 1; return s - i; }",
                vec![0, 1, 9, 50000],
            ),
            (
                "int f(int n) { int i; for (i = 0; i <= n; i += 3) ; return i; }",
                vec![0, 1, 2, 3, 1000],
            ),
            (
                "int f(int n) { int i; for (i = n; i >= 10; i -= 7) ; return i; }",
                vec![9, 10, 11, 80000],
            ),
            (
                "int f(int n) { int i; for (i = 2147483600; i < 2147483640; i += n) ; return i; }",
                vec![1, 3, 7, 39],
            ),
        ];
        for (src, args) in cases {
            let p = compile(src).unwrap();
            let f = p.function("f").unwrap();
            for a in args {
                let mut mi = Machine::new(&p);
                mi.set_engine(SimEngine::Interp);
                let mut mt = Machine::new(&p);
                mt.set_engine(SimEngine::Threaded);
                let ri = mi.call_instance_counted(f, &[a]);
                let rt = mt.call_instance_counted(f, &[a]);
                assert_eq!(ri, rt, "{src} n={a}");
                assert_eq!(mi.dynamic_insts(), mt.dynamic_insts(), "{src} n={a}");
            }
        }
    }

    #[test]
    fn rep_fast_path_falls_back_when_the_loop_wraps() {
        // Stepping past i32::MAX wraps; the closed-form path must detect
        // the wrap and fall back to the generic (wrapping, fuel-gated)
        // execution so both engines observe the identical spin.
        let p = compile(
            "int f(int n) { int i; for (i = 2147483600; i < 2147483640; i += n) ; return i; }",
        )
        .unwrap();
        let f = p.function("f").unwrap();
        let mut mi = Machine::new(&p);
        mi.set_engine(SimEngine::Interp);
        mi.set_fuel(10_000);
        let mut mt = Machine::new(&p);
        mt.set_engine(SimEngine::Threaded);
        mt.set_fuel(10_000);
        // Step 50 overshoots into wraparound: an effectively endless spin.
        assert_eq!(mi.call_instance(f, &[50]), mt.call_instance(f, &[50]));
        assert_eq!(mi.dynamic_insts(), mt.dynamic_insts());
        assert_eq!(mi.call_instance(f, &[50]), Err(SimError::OutOfFuel));
    }

    #[test]
    fn rep_fast_path_respects_fuel_mid_loop() {
        // Exhausting fuel in the middle of a rep-eligible loop must fall
        // back to exact per-instruction accounting.
        let p = compile("int f(int n) { int i; for (i = 0; i < n; i++) ; return i; }").unwrap();
        let f = p.function("f").unwrap();
        let mut exact = Machine::new(&p);
        exact.call_instance(f, &[1000]).unwrap();
        let n = exact.dynamic_insts();
        for cut in [n / 2, n - 2, n - 1] {
            for engine in [SimEngine::Interp, SimEngine::Threaded] {
                let mut m = Machine::new(&p);
                m.set_engine(engine);
                m.set_fuel(cut);
                assert_eq!(m.call_instance(f, &[1000]), Err(SimError::OutOfFuel), "{engine:?}");
                assert_eq!(m.dynamic_insts(), cut, "{engine:?} cut={cut}");
            }
        }
    }

    #[test]
    fn handbuilt_rep_loops_match_the_interpreter() {
        // Build the exact three-instruction self-loop the rep detector
        // recognizes — `r += step; IC = r ? bound; PC = IC cond, self` —
        // directly, covering every monotone (cond, step) pairing plus the
        // non-monotone shapes the detector must skip.
        use vpo_rtl::builder::FunctionBuilder;
        use vpo_rtl::Cond;
        let build = |start: i64, step: i64, bound: i64, cond: Cond| {
            let mut b = FunctionBuilder::new("f");
            let r = b.reg();
            b.assign(r, Expr::Const(start));
            let l = b.new_label();
            b.start_block(l);
            b.assign(r, Expr::bin(BinOp::Add, Expr::Reg(r), Expr::Const(step)));
            b.compare(Expr::Reg(r), Expr::Const(bound));
            b.cond_branch(cond, l);
            let done = b.new_label();
            b.start_block(done);
            b.ret(Some(Expr::Reg(r)));
            b.finish()
        };
        let p = vpo_rtl::Program::default();
        for (start, step, bound, cond) in [
            (0, 1, 10, Cond::Lt),
            (0, 3, 10, Cond::Le),
            (0, 3, 0, Cond::Lt),
            (100, -7, 3, Cond::Gt),
            (50, -1, -20, Cond::Ge),
            (2147483600, 7, 2147483646, Cond::Lt),
            (-5, 1, 5, Cond::Ne),
            (0, 0, 10, Cond::Lt),
            (0, -1, 10, Cond::Lt),
        ] {
            let f = build(start, step, bound, cond);
            let mut mi = Machine::new(&p);
            mi.set_engine(SimEngine::Interp);
            mi.set_fuel(1_000_000);
            let mut mt = Machine::new(&p);
            mt.set_engine(SimEngine::Threaded);
            mt.set_fuel(1_000_000);
            let a = mi.call_instance_counted(&f, &[]);
            let b = mt.call_instance_counted(&f, &[]);
            assert_eq!(a, b, "start={start} step={step} bound={bound} {cond:?}");
            assert_eq!(mi.dynamic_insts(), mt.dynamic_insts(), "{cond:?}");
        }
        // A trip count far beyond what per-instruction execution could
        // cover in test time: only the closed form reaches the exact
        // count instantly.
        let f = build(0, 1, 50_000_000, Cond::Lt);
        let mut m = Machine::new(&p);
        m.set_fuel(u64::MAX);
        assert_eq!(m.call_instance(&f, &[]).unwrap(), 50_000_000);
        assert_eq!(m.dynamic_insts(), 2 + 3 * 50_000_000);

        // The register-bound form — the shape `for (i = 0; i < n; i++)`
        // optimizes into, where the bound lives in a loop-invariant
        // register rather than a literal.
        let build_reg = |start: i64, step: i64, cond: Cond| {
            let mut b = FunctionBuilder::new("f");
            let n = b.param();
            let r = b.reg();
            b.assign(r, Expr::Const(start));
            let l = b.new_label();
            b.start_block(l);
            b.assign(r, Expr::bin(BinOp::Add, Expr::Reg(r), Expr::Const(step)));
            b.compare(Expr::Reg(r), Expr::Reg(n));
            b.cond_branch(cond, l);
            let done = b.new_label();
            b.start_block(done);
            b.ret(Some(Expr::Reg(r)));
            b.finish()
        };
        for (start, step, cond, bound) in [
            (0, 1, Cond::Lt, 10),
            (0, 3, Cond::Le, 10),
            (0, 3, Cond::Lt, 0),
            (100, -7, Cond::Gt, 3),
            (50, -1, Cond::Ge, -20),
            (-5, 1, Cond::Ne, 5),
        ] {
            let f = build_reg(start, step, cond);
            let mut mi = Machine::new(&p);
            mi.set_engine(SimEngine::Interp);
            mi.set_fuel(1_000_000);
            let mut mt = Machine::new(&p);
            mt.set_engine(SimEngine::Threaded);
            mt.set_fuel(1_000_000);
            let a = mi.call_instance_counted(&f, &[bound]);
            let b = mt.call_instance_counted(&f, &[bound]);
            assert_eq!(a, b, "start={start} step={step} bound={bound} {cond:?}");
            assert_eq!(mi.dynamic_insts(), mt.dynamic_insts(), "{cond:?}");
        }
        let f = build_reg(0, 1, Cond::Lt);
        let mut m = Machine::new(&p);
        m.set_fuel(u64::MAX);
        assert_eq!(m.call_instance(&f, &[50_000_000]).unwrap(), 50_000_000);
        assert_eq!(m.dynamic_insts(), 2 + 3 * 50_000_000);
    }

    #[test]
    fn handbuilt_rotated_pair_loops_match_the_interpreter() {
        // The rotated / unrolled-by-two shape the batch compiler emits:
        // two consecutive blocks each doing `r += step; IC = r ? n;
        // branch`, the first exiting the cycle and the second looping
        // back. Odd trip counts leave via the first half's branch, even
        // ones fall through the second — both must match the
        // interpreter's path, flags, and block counts exactly.
        use vpo_rtl::builder::FunctionBuilder;
        use vpo_rtl::Cond;
        let build = |start: i64, step: i64, exit: Cond, cont: Cond| {
            let mut b = FunctionBuilder::new("f");
            let n = b.param();
            let r = b.reg();
            b.assign(r, Expr::Const(start));
            let head = b.new_label();
            let done = b.new_label();
            b.start_block(head);
            b.assign(r, Expr::bin(BinOp::Add, Expr::Reg(r), Expr::Const(step)));
            b.compare(Expr::Reg(r), Expr::Reg(n));
            b.cond_branch(exit, done);
            let half = b.new_label();
            b.start_block(half);
            b.assign(r, Expr::bin(BinOp::Add, Expr::Reg(r), Expr::Const(step)));
            b.compare(Expr::Reg(r), Expr::Reg(n));
            b.cond_branch(cont, head);
            b.start_block(done);
            b.ret(Some(Expr::Reg(r)));
            b.finish()
        };
        let p = vpo_rtl::Program::default();
        for (start, step, exit, cont, bound) in [
            (0, 1, Cond::Ge, Cond::Lt, 10), // even trips: fall-through exit
            (0, 1, Cond::Ge, Cond::Lt, 11), // odd trips: branch exit
            (0, 1, Cond::Ge, Cond::Lt, 0),  // t = 1 regardless of bound
            (0, 2, Cond::Gt, Cond::Le, 10), // continues on equality
            (100, -3, Cond::Le, Cond::Gt, 5),
            (50, -1, Cond::Lt, Cond::Ge, -20),
            (0, 1, Cond::Ge, Cond::Le, 10), // mismatched pair: no fast path
        ] {
            let f = build(start, step, exit, cont);
            let mut mi = Machine::new(&p);
            mi.set_engine(SimEngine::Interp);
            mi.set_fuel(1_000_000);
            let mut mt = Machine::new(&p);
            mt.set_engine(SimEngine::Threaded);
            mt.set_fuel(1_000_000);
            let a = mi.call_instance_counted(&f, &[bound]);
            let b = mt.call_instance_counted(&f, &[bound]);
            assert_eq!(a, b, "start={start} step={step} bound={bound} {exit:?}/{cont:?}");
            assert_eq!(mi.dynamic_insts(), mt.dynamic_insts(), "{exit:?}/{cont:?}");
        }
        // Closed-form proof: a trip count per-instruction execution
        // could not cover in test time, at both parities.
        for bound in [50_000_000, 50_000_001] {
            let f = build(0, 1, Cond::Ge, Cond::Lt);
            let mut m = Machine::new(&p);
            m.set_fuel(u64::MAX);
            assert_eq!(m.call_instance(&f, &[bound]).unwrap(), bound);
            assert_eq!(m.dynamic_insts(), 2 + 3 * bound as u64);
        }
    }

    #[test]
    fn handbuilt_while_loops_match_the_interpreter() {
        // The header/latch while-loop shape mid-sequence instances
        // carry: `IC = r ? n; PC = IC exit, done` falling into
        // `r += step; PC = header`. The exit test runs before each
        // increment, so zero trips are possible.
        use vpo_rtl::builder::FunctionBuilder;
        use vpo_rtl::Cond;
        let build = |start: i64, step: i64, exit: Cond| {
            let mut b = FunctionBuilder::new("f");
            let n = b.param();
            let r = b.reg();
            b.assign(r, Expr::Const(start));
            let head = b.new_label();
            let done = b.new_label();
            b.start_block(head);
            b.compare(Expr::Reg(r), Expr::Reg(n));
            b.cond_branch(exit, done);
            let latch = b.new_label();
            b.start_block(latch);
            b.assign(r, Expr::bin(BinOp::Add, Expr::Reg(r), Expr::Const(step)));
            b.jump(head);
            b.start_block(done);
            b.ret(Some(Expr::Reg(r)));
            b.finish()
        };
        let p = vpo_rtl::Program::default();
        for (start, step, exit, bound) in [
            (0, 1, Cond::Ge, 10),
            (0, 1, Cond::Ge, 0),  // zero trips: exit before any increment
            (0, 1, Cond::Ge, -5), // zero trips, already past the bound
            (0, 3, Cond::Gt, 9),  // keeps looping on equality
            (100, -7, Cond::Le, 5),
            (50, -1, Cond::Lt, -20),
            (0, 1, Cond::Eq, 10), // non-monotone exit: no fast path
        ] {
            let f = build(start, step, exit);
            let mut mi = Machine::new(&p);
            mi.set_engine(SimEngine::Interp);
            mi.set_fuel(1_000_000);
            let mut mt = Machine::new(&p);
            mt.set_engine(SimEngine::Threaded);
            mt.set_fuel(1_000_000);
            let a = mi.call_instance_counted(&f, &[bound]);
            let b = mt.call_instance_counted(&f, &[bound]);
            assert_eq!(a, b, "start={start} step={step} bound={bound} {exit:?}");
            assert_eq!(mi.dynamic_insts(), mt.dynamic_insts(), "{exit:?}");
        }
        let f = build(0, 1, Cond::Ge);
        let mut m = Machine::new(&p);
        m.set_fuel(u64::MAX);
        assert_eq!(m.call_instance(&f, &[50_000_000]).unwrap(), 50_000_000);
        assert_eq!(m.dynamic_insts(), 2 + 4 * 50_000_000 + 2);
    }

    #[test]
    fn handbuilt_copy_laden_while_loops_match_the_interpreter() {
        // The copy-laden while shapes mid-sequence instances carry:
        // headers that copy the counter and bound into temporaries
        // before comparing, latches that increment through a temporary,
        // secondary linear counters, and constant rewrites. The
        // symbolic detector folds the copies; every temporary's final
        // must match the interpreter bit for bit, including at zero
        // trips. The returned sum folds all of them in.
        use vpo_rtl::builder::FunctionBuilder;
        use vpo_rtl::Cond;
        let build = |start: i64| {
            let mut b = FunctionBuilder::new("f");
            let n = b.param();
            let i = b.reg();
            let t1 = b.reg();
            let t2 = b.reg();
            let t3 = b.reg();
            let s = b.reg();
            let h = b.reg();
            let k = b.reg();
            b.assign(i, Expr::Const(start));
            b.assign(t1, Expr::Const(-1));
            b.assign(t2, Expr::Const(-2));
            b.assign(t3, Expr::Const(-3));
            b.assign(s, Expr::Const(7));
            b.assign(h, Expr::Const(-4));
            b.assign(k, Expr::Const(-5));
            let head = b.new_label();
            let done = b.new_label();
            b.start_block(head);
            // `sk`-style header: copies feed the compare (the bound is
            // `n + 2`, exercising a folded bound offset); `h` shadows
            // `i + 3` and must take its exit-pass value.
            b.assign(t1, Expr::Reg(i));
            b.assign(t2, Expr::bin(BinOp::Add, Expr::Reg(n), Expr::Const(2)));
            b.assign(h, Expr::bin(BinOp::Add, Expr::Reg(t1), Expr::Const(3)));
            b.compare(Expr::Reg(t1), Expr::Reg(t2));
            b.cond_branch(Cond::Ge, done);
            let latch = b.new_label();
            b.start_block(latch);
            // `skc`-style latch: increment through a temporary, plus a
            // secondary counter stepped by 5 and a constant rewrite.
            b.assign(t3, Expr::bin(BinOp::Add, Expr::Reg(i), Expr::Const(1)));
            b.assign(i, Expr::Reg(t3));
            b.assign(s, Expr::bin(BinOp::Add, Expr::Reg(s), Expr::Const(5)));
            b.assign(k, Expr::Const(42));
            b.jump(head);
            b.start_block(done);
            let mul = |r, c| Expr::bin(BinOp::Mul, Expr::Reg(r), Expr::Const(c));
            let sum = Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Add, Expr::Reg(t1), mul(t2, 3)),
                Expr::bin(
                    BinOp::Add,
                    Expr::bin(BinOp::Add, mul(t3, 5), mul(s, 7)),
                    Expr::bin(BinOp::Add, mul(h, 11), mul(k, 13)),
                ),
            );
            b.ret(Some(sum));
            b.finish()
        };
        let p = vpo_rtl::Program::default();
        for (start, n) in [(0, 10), (0, 0), (0, -2), (5, -30), (-3, 4), (7, 5)] {
            let f = build(start);
            let mut mi = Machine::new(&p);
            mi.set_engine(SimEngine::Interp);
            mi.set_fuel(1_000_000);
            let mut mt = Machine::new(&p);
            mt.set_engine(SimEngine::Threaded);
            mt.set_fuel(1_000_000);
            let a = mi.call_instance_counted(&f, &[n]);
            let b = mt.call_instance_counted(&f, &[n]);
            assert_eq!(a, b, "start={start} n={n}");
            assert_eq!(mi.dynamic_insts(), mt.dynamic_insts(), "start={start} n={n}");
        }
        // Closed-form proof at a scale the generic path cannot reach in
        // these counts cheaply: entry 7, trip 10 (header 5 + latch 5),
        // exit pass 5, return 1.
        let f = build(0);
        let mut m = Machine::new(&p);
        m.set_fuel(u64::MAX);
        m.call_instance(&f, &[50_000_000]).unwrap();
        let t = 50_000_002u64;
        assert_eq!(m.dynamic_insts(), 7 + 10 * t + 5 + 1);

        // A latch that reads a register the cycle writes *later* sees
        // last trip's value — outside the linear model, so the fast
        // path must decline and the generic path must still agree.
        let build_stale = |start: i64| {
            let mut b = FunctionBuilder::new("g");
            let n = b.param();
            let i = b.reg();
            let a = b.reg();
            let v = b.reg();
            b.assign(i, Expr::Const(start));
            b.assign(a, Expr::Const(100));
            b.assign(v, Expr::Const(200));
            let head = b.new_label();
            let done = b.new_label();
            b.start_block(head);
            b.compare(Expr::Reg(i), Expr::Reg(n));
            b.cond_branch(Cond::Ge, done);
            let latch = b.new_label();
            b.start_block(latch);
            b.assign(a, Expr::bin(BinOp::Add, Expr::Reg(v), Expr::Const(1)));
            b.assign(v, Expr::bin(BinOp::Add, Expr::Reg(a), Expr::Const(1)));
            b.assign(i, Expr::bin(BinOp::Add, Expr::Reg(i), Expr::Const(1)));
            b.jump(head);
            b.start_block(done);
            b.ret(Some(Expr::bin(BinOp::Add, Expr::Reg(a), Expr::Reg(v))));
            b.finish()
        };
        for n in [0, 1, 3, 17] {
            let f = build_stale(0);
            let mut mi = Machine::new(&p);
            mi.set_engine(SimEngine::Interp);
            mi.set_fuel(1_000_000);
            let mut mt = Machine::new(&p);
            mt.set_engine(SimEngine::Threaded);
            mt.set_fuel(1_000_000);
            assert_eq!(mi.call_instance_counted(&f, &[n]), mt.call_instance_counted(&f, &[n]));
            assert_eq!(mi.dynamic_insts(), mt.dynamic_insts(), "n={n}");
        }
    }

    #[test]
    fn lowering_cache_is_shared_across_instances() {
        let p =
            compile("int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i; return s; }")
                .unwrap();
        let before = stats::snapshot();
        let mut m = Machine::new(&p);
        let f = &p.functions[0];
        m.call_instance(f, &[5]).unwrap();
        // A near-identical instance (a clone here) must hit the cache for
        // every block.
        let g = f.clone();
        m.call_instance(&g, &[5]).unwrap();
        let after = stats::snapshot();
        assert!(
            after.blocks_lowered >= before.blocks_lowered + f.blocks.len() as u64,
            "first lowering misses"
        );
        assert!(
            after.lower_cache_hits >= before.lower_cache_hits + f.blocks.len() as u64,
            "second lowering must hit for every block"
        );
        assert!(after.batched_retires > before.batched_retires, "batched crediting never fired");
    }

    #[test]
    fn threaded_engine_handles_deep_and_error_paths() {
        // StackOverflow, OutOfStack, and unknown-callee behavior must
        // classify identically on both engines.
        let p = compile("int f(int n) { return f(n + 1); }").unwrap();
        assert_engines_agree(&p, p.function("f").unwrap(), &[0]);

        let p = compile(
            "int f(int n) { int buf[4000]; buf[0] = n; if (n == 0) return buf[0]; return f(n - 1) + buf[0]; }",
        )
        .unwrap();
        for engine in [SimEngine::Interp, SimEngine::Threaded] {
            let mut m = Machine::with_mem_size(&p, 1 << 16);
            m.set_engine(engine);
            assert_eq!(m.call("f", &[64]), Err(SimError::OutOfStack), "{engine:?}");
        }

        let p = compile("int f() { return g(); }").unwrap();
        assert_engines_agree(&p, p.function("f").unwrap(), &[]);
    }

    #[test]
    fn semantics_preserved_under_batch_optimization() {
        let src = r#"
            int data[8] = { 9, 2, 7, 4, 5, 6, 3, 8 };
            int max() {
                int best = data[0];
                int i;
                for (i = 1; i < 8; i++) {
                    if (data[i] > best) best = data[i];
                }
                return best;
            }
        "#;
        let p = compile(src).unwrap();
        let mut m = Machine::new(&p);
        let naive = m.call("max", &[]).unwrap();
        let naive_count = m.dynamic_insts();

        let mut opt = p.functions[0].clone();
        let target = vpo_opt::Target::default();
        vpo_opt::batch::batch_compile(&mut opt, &target);
        let mut m2 = Machine::new(&p);
        let fast = m2.call_instance(&opt, &[]).unwrap();
        assert_eq!(naive, fast);
        assert!(
            m2.dynamic_insts() < naive_count / 2,
            "optimized code should execute far fewer instructions: {} vs {naive_count}",
            m2.dynamic_insts()
        );
    }
}
