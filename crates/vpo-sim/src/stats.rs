//! Process-global counters for the threaded engine.
//!
//! Machines accumulate these locally and flush them once per public call
//! (one relaxed atomic add per simulation, not one per block), so heavily
//! parallel oracle batteries do not contend on a shared cache line. The
//! `phase-order` telemetry registry folds these totals into its snapshots
//! as `sim.blocks_lowered`, `sim.lower_cache_hits`, and
//! `sim.batched_retires`.

use std::sync::atomic::{AtomicU64, Ordering};

static BLOCKS_LOWERED: AtomicU64 = AtomicU64::new(0);
static LOWER_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static BATCHED_RETIRES: AtomicU64 = AtomicU64::new(0);

/// Point-in-time totals of the threaded engine's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Blocks lowered for the first time (lower-cache misses). Depends on
    /// how work was split across machines, so not deterministic across
    /// job counts.
    pub blocks_lowered: u64,
    /// Lowerings served from a per-machine block cache. Also
    /// scheduling-dependent.
    pub lower_cache_hits: u64,
    /// Block executions whose dynamic-count crediting was applied as a
    /// single batched add (including closed-form `rep` loops). A pure
    /// function of the simulated instruction streams, so deterministic.
    pub batched_retires: u64,
}

/// Reads the current totals.
pub fn snapshot() -> SimStats {
    SimStats {
        blocks_lowered: BLOCKS_LOWERED.load(Ordering::Relaxed),
        lower_cache_hits: LOWER_CACHE_HITS.load(Ordering::Relaxed),
        batched_retires: BATCHED_RETIRES.load(Ordering::Relaxed),
    }
}

/// Zeroes all counters (used between perfsuite trials).
pub fn reset() {
    BLOCKS_LOWERED.store(0, Ordering::Relaxed);
    LOWER_CACHE_HITS.store(0, Ordering::Relaxed);
    BATCHED_RETIRES.store(0, Ordering::Relaxed);
}

pub(crate) fn flush(lowered: u64, hits: u64, retires: u64) {
    if lowered > 0 {
        BLOCKS_LOWERED.fetch_add(lowered, Ordering::Relaxed);
    }
    if hits > 0 {
        LOWER_CACHE_HITS.fetch_add(hits, Ordering::Relaxed);
    }
    if retires > 0 {
        BATCHED_RETIRES.fetch_add(retires, Ordering::Relaxed);
    }
}
