//! The direct-threaded execution engine.
//!
//! The tree-walking interpreter in the crate root re-resolves everything
//! on every step: registers through a per-frame `HashMap`, branch targets
//! through a linear `block_index` scan, callees through a name map, and
//! operands through recursive `Expr` walks. This module pre-lowers a
//! [`Function`] once into a flat form where all of that is already done:
//!
//! * every register becomes a dense index into a per-frame `Vec<i32>`
//!   (hard registers occupy slots `0..64`, pseudo register `i` occupies
//!   slot `64 + i`, so the mapping is function-independent and lowered
//!   blocks can be shared between functions);
//! * every branch target becomes the target's positional block index;
//! * every callee becomes the callee's index in the program function
//!   table (unknown callees stay by-name so the error is still raised at
//!   execution time, exactly like the interpreter);
//! * every expression tree becomes a postfix [`EOp`] array evaluated over
//!   one reusable stack — leaf and near-leaf shapes skip even that via
//!   the [`LExpr`] fast variants.
//!
//! Lowered blocks are cached in the machine, keyed by the exact byte
//! encoding of their instructions (with branch targets already resolved).
//! The thousands of near-identical instances one enumeration produces
//! mostly differ in a few blocks, so the oracle amortizes lowering across
//! the whole DAG; the key is built in a warm scratch buffer and only
//! cloned on a miss, the same trick the canonicalizer's warm table uses.
//! Exact byte keys (not hashes of them) mean a collision is impossible,
//! so the cache can never silently miscompile.
//!
//! Dynamic-count crediting is batched per block: when the remaining fuel
//! covers the whole block and the block contains no call, the ops run
//! with no per-instruction checks and a single `dynamic += k` at block
//! exit. Blocks with calls, or executed near the fuel ceiling, take a
//! careful path with the interpreter's exact per-instruction fuel check,
//! so `OutOfFuel` fires on precisely the same instruction in both
//! engines. A three-instruction monotone counting self-loop
//! (`r += c; IC = r ? k; PC = IC cond, self`) additionally takes a
//! `rep`-style closed-form fast path that retires all iterations at once.

use std::collections::HashMap;
use std::sync::Arc;

use vpo_rtl::{BinOp, Cond, Expr, Function, Inst, Label, Reg, RegClass, UnOp, Width};

use crate::{Machine, SimError, MAX_DEPTH};

/// Sentinel block index for a branch whose label has no block. The
/// interpreter panics when such a branch *executes*; the threaded engine
/// preserves that by panicking only if the sentinel is ever taken.
const DANGLING: u32 = u32::MAX;

/// Hard registers occupy slots `0..HARD_SLOTS`; pseudo register `i` maps
/// to slot `HARD_SLOTS + i`. Keeping the mapping function-independent is
/// what lets lowered blocks be shared across functions and instances.
const HARD_SLOTS: u32 = 64;

/// Slot of hard register 13, the stack-pointer convention register that
/// finalized code expects to hold the frame's upper bound on entry.
pub(crate) const R13_SLOT: usize = 13;

fn slot(r: Reg) -> u32 {
    match r.class {
        RegClass::Hard => {
            assert!(
                (r.index as u32) < HARD_SLOTS,
                "hard register r[{}] out of range for the threaded engine",
                r.index
            );
            r.index as u32
        }
        RegClass::Pseudo => HARD_SLOTS + r.index as u32,
    }
}

/// One step of a postfix expression program.
#[derive(Debug)]
pub(crate) enum EOp {
    /// Push a register slot's value.
    Reg(u32),
    /// Push a constant.
    Const(i32),
    /// Push `HI[sym]` of global `sym`.
    Hi(u32),
    /// Push `LO[sym]` of global `sym`.
    Lo(u32),
    /// Push the address of a local slot.
    Local(u32),
    /// Pop two, push the binary result (traps like the interpreter).
    Bin(BinOp),
    /// Pop one, push the unary result.
    Un(UnOp),
    /// Pop an address, push the loaded value.
    Load(Width),
}

/// A lowered expression: leaf shapes inline, the dominant two-operand
/// shapes (`M[reg]`, `reg ⊕ reg`, `reg ⊕ const`) as dedicated variants
/// evaluated without touching the postfix stack, everything else
/// postfix.
#[derive(Debug)]
pub(crate) enum LExpr {
    Reg(u32),
    Const(i32),
    Hi(u32),
    Lo(u32),
    Local(u32),
    LoadR(Width, u32),
    LoadRC(Width, u32, i32),
    BinRR(BinOp, u32, u32),
    BinRC(BinOp, u32, i32),
    Post(Box<[EOp]>),
}

/// A lowered instruction. Mirrors [`Inst`] with operands resolved to
/// dense indices; see the module docs for the mapping.
#[derive(Debug)]
pub(crate) enum Op {
    Assign { dst: u32, src: LExpr },
    Store { width: Width, addr: LExpr, src: LExpr },
    Compare { lhs: LExpr, rhs: LExpr },
    CondBranch { cond: Cond, target: u32 },
    Jump { target: u32 },
    Call { callee: Option<u32>, name: Box<str>, args: Box<[LExpr]>, dst: Option<u32> },
    Return { value: Option<LExpr> },
}

/// The loop bound of a [`Rep`]: a literal, or a register the block never
/// writes (the self-loop's only assignment is the induction variable, so
/// a register bound is loop-invariant and can be read once at entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RepBound {
    Const(i32),
    Reg(u32),
}

/// A monotone counting self-loop eligible for closed-form retirement:
/// `dst += step; IC = dst ? bound; PC = IC cond, target` where the
/// condition keeps looping while `dst` moves toward `bound`.
#[derive(Debug)]
pub(crate) struct Rep {
    /// Block index the closing branch targets. The fast path applies only
    /// when the block is entered *at* this index (a genuine self-loop) —
    /// the same lowered block may sit at a different position in another
    /// function, where the branch is an ordinary back edge.
    target: u32,
    dst: u32,
    step: i32,
    bound: RepBound,
    /// Loop continues on equality (`<=` / mirrored `>=`) too.
    le: bool,
}

/// The rotated / unrolled-by-two counting loop the batch compiler emits:
/// two consecutive blocks, each `dst += step; IC = dst ? bound;
/// CondBranch`, where the first block's branch *exits* the cycle and the
/// second's loops back to the first. Detected per function (it spans two
/// blocks, so it cannot live in the shared per-block cache) and retired
/// in closed form like [`Rep`]. Both halves write only `dst`, so a
/// register bound is loop-invariant.
#[derive(Debug)]
pub(crate) struct Rep2 {
    dst: u32,
    step: i32,
    bound: RepBound,
    /// Loop continues on equality too.
    le: bool,
    /// Continuation when the exit fires in the first half (odd trip
    /// count): the first block's branch target. An even trip count falls
    /// through past the pair instead.
    exit_odd: u32,
}

/// Where a written register's final value comes from when a while-loop
/// cycle is retired in closed form (see [`RepW`]). The paired offset is
/// applied with wrapping arithmetic — exactly what the per-trip ops
/// would have computed mod 2³².
#[derive(Debug, Clone, Copy)]
pub(crate) enum FinalBase {
    /// The induction variable's value at that segment's last run.
    Ind,
    /// A loop-invariant register.
    Inv(u32),
    /// A literal; the offset IS the value.
    Lit,
    /// The register is itself a secondary linear counter stepped by the
    /// offset once per latch run.
    SelfLin,
}

/// The header/latch while-loop shape mid-sequence instances carry: a
/// header of register copies ending in `IC = i ? bound; PC = IC cond,
/// exit`, falling into a latch of register assignments that step `i` by
/// a constant and jump back to the header. Detected by a linear
/// symbolic walk of both blocks: every assignment must reduce to
/// `V(r) + c` (the value of `r` at the current trip's header entry,
/// plus a wrapping constant) or a literal, where `r` is the induction
/// variable, a secondary self-stepped counter, or a register the cycle
/// never writes. The exit test runs *before* each increment, so zero
/// trips are possible.
#[derive(Debug)]
pub(crate) struct RepW {
    dst: u32,
    step: i32,
    bound: RepBound,
    /// Wrapping offset applied to a register bound (a copy chain may
    /// fold constants into the compare operand).
    bound_off: i32,
    /// The exit fires on equality too (`>=` / mirrored `<=`) rather
    /// than strictly past the bound.
    ge: bool,
    /// The header's branch target — the only way out of the cycle.
    exit: u32,
    /// Instructions per full trip (header + latch) and per exit pass
    /// (header only).
    trip_insts: u32,
    exit_insts: u32,
    /// Final values of the other written registers:
    /// `(reg, written_in_header, base, wrapping offset)`. Header-written
    /// regs update once more on the exit pass; latch-written ones keep
    /// their last-trip value (and stay untouched when the trip count is
    /// zero).
    finals: Box<[(u32, bool, FinalBase, i32)]>,
}

/// A two-block counting cycle starting at some block index; see
/// [`Rep2`] and [`RepW`].
#[derive(Debug)]
pub(crate) enum PairRep {
    Rotated(Rep2),
    While(RepW),
}

/// One basic block, lowered.
#[derive(Debug)]
pub(crate) struct LoweredBlock {
    ops: Box<[Op]>,
    /// Blocks containing calls always take the careful (per-instruction
    /// fuel check) path: the callee shares the fuel budget.
    has_call: bool,
    /// Highest register slot any op touches; sizes the frame's register
    /// file at function level.
    max_slot: u32,
    rep: Option<Rep>,
}

/// A function pre-lowered for the threaded engine.
#[derive(Debug)]
pub(crate) struct LoweredFunction {
    pub(crate) name: Box<str>,
    param_slots: Box<[u32]>,
    reg_slots: u32,
    /// Word-aligned sizes of the locals, in declaration order.
    local_sizes: Box<[u32]>,
    frame_size: u32,
    pub(crate) blocks: Box<[Arc<LoweredBlock>]>,
    /// `rep2[i]` is the two-block counting cycle starting at block `i`,
    /// if any. Indexed in lockstep with `blocks` (always one entry per
    /// block) so dispatch pays one slice load, no hashing.
    rep2: Box<[Option<PairRep>]>,
}

/// A function pre-lowered for the threaded engine, reusable across calls
/// and cheap to clone. Obtain one from [`Machine::lower_instance`] and
/// execute it with [`Machine::call_lowered`] /
/// [`Machine::call_lowered_counted`] to amortize lowering across a
/// battery of runs.
#[derive(Clone)]
pub struct LoweredInstance(pub(crate) Arc<LoweredFunction>);

/// The per-machine block cache. Keys are the exact byte encoding of a
/// block's instructions with branch targets resolved to positional
/// indices, built in the warm `key_buf` and cloned only on a miss.
#[derive(Clone, Default)]
pub(crate) struct LowerCache {
    map: HashMap<Box<[u8]>, Arc<LoweredBlock>>,
    key_buf: Vec<u8>,
    /// Stats accumulated locally and flushed to [`crate::stats`] by the
    /// machine's public entry points (one atomic add per call, not one
    /// per block).
    pub(crate) pending_lowered: u64,
    pub(crate) pending_hits: u64,
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_reg(buf: &mut Vec<u8>, r: Reg) {
    buf.push(match r.class {
        RegClass::Hard => 0,
        RegClass::Pseudo => 1,
    });
    buf.extend_from_slice(&r.index.to_le_bytes());
}

fn encode_expr(e: &Expr, buf: &mut Vec<u8>) {
    match e {
        Expr::Reg(r) => {
            buf.push(0);
            put_reg(buf, *r);
        }
        Expr::Const(c) => {
            buf.push(1);
            buf.extend_from_slice(&c.to_le_bytes());
        }
        Expr::Hi(s) => {
            buf.push(2);
            put_u32(buf, s.0);
        }
        Expr::Lo(s) => {
            buf.push(3);
            put_u32(buf, s.0);
        }
        Expr::LocalAddr(l) => {
            buf.push(4);
            put_u32(buf, l.0);
        }
        Expr::Bin(op, a, b) => {
            buf.push(5);
            buf.push(*op as u8);
            encode_expr(a, buf);
            encode_expr(b, buf);
        }
        Expr::Un(op, a) => {
            buf.push(6);
            buf.push(*op as u8);
            encode_expr(a, buf);
        }
        Expr::Load(w, a) => {
            buf.push(7);
            buf.push(*w as u8);
            encode_expr(a, buf);
        }
    }
}

fn encode_inst(inst: &Inst, resolve: &impl Fn(Label) -> u32, buf: &mut Vec<u8>) {
    match inst {
        Inst::Assign { dst, src } => {
            buf.push(0);
            put_reg(buf, *dst);
            encode_expr(src, buf);
        }
        Inst::Store { width, addr, src } => {
            buf.push(1);
            buf.push(*width as u8);
            encode_expr(addr, buf);
            encode_expr(src, buf);
        }
        Inst::Compare { lhs, rhs } => {
            buf.push(2);
            encode_expr(lhs, buf);
            encode_expr(rhs, buf);
        }
        Inst::CondBranch { cond, target } => {
            buf.push(3);
            buf.push(*cond as u8);
            put_u32(buf, resolve(*target));
        }
        Inst::Jump { target } => {
            buf.push(4);
            put_u32(buf, resolve(*target));
        }
        Inst::Call { callee, args, dst } => {
            buf.push(5);
            put_u32(buf, callee.len() as u32);
            buf.extend_from_slice(callee.as_bytes());
            put_u32(buf, args.len() as u32);
            for a in args {
                encode_expr(a, buf);
            }
            match dst {
                Some(d) => {
                    buf.push(1);
                    put_reg(buf, *d);
                }
                None => buf.push(0),
            }
        }
        Inst::Return { value } => {
            buf.push(6);
            match value {
                Some(v) => {
                    buf.push(1);
                    encode_expr(v, buf);
                }
                None => buf.push(0),
            }
        }
    }
}

fn flatten(e: &Expr, max_slot: &mut u32, out: &mut Vec<EOp>) {
    match e {
        Expr::Reg(r) => {
            let s = slot(*r);
            *max_slot = (*max_slot).max(s);
            out.push(EOp::Reg(s));
        }
        Expr::Const(c) => out.push(EOp::Const(*c as i32)),
        Expr::Hi(s) => out.push(EOp::Hi(s.0)),
        Expr::Lo(s) => out.push(EOp::Lo(s.0)),
        Expr::LocalAddr(l) => out.push(EOp::Local(l.0)),
        Expr::Bin(op, a, b) => {
            flatten(a, max_slot, out);
            flatten(b, max_slot, out);
            out.push(EOp::Bin(*op));
        }
        Expr::Un(op, a) => {
            flatten(a, max_slot, out);
            out.push(EOp::Un(*op));
        }
        Expr::Load(w, a) => {
            flatten(a, max_slot, out);
            out.push(EOp::Load(*w));
        }
    }
}

fn lower_expr(e: &Expr, max_slot: &mut u32) -> LExpr {
    let mut reg = |r: &vpo_rtl::Reg| {
        let s = slot(*r);
        *max_slot = (*max_slot).max(s);
        s
    };
    match e {
        Expr::Reg(r) => LExpr::Reg(reg(r)),
        Expr::Const(c) => LExpr::Const(*c as i32),
        Expr::Hi(s) => LExpr::Hi(s.0),
        Expr::Lo(s) => LExpr::Lo(s.0),
        Expr::LocalAddr(l) => LExpr::Local(l.0),
        Expr::Load(w, a) => match a.as_ref() {
            Expr::Reg(r) => LExpr::LoadR(*w, reg(r)),
            Expr::Bin(BinOp::Add, x, y) => match (x.as_ref(), y.as_ref()) {
                (Expr::Reg(r), Expr::Const(c)) => LExpr::LoadRC(*w, reg(r), *c as i32),
                _ => {
                    let mut out = Vec::new();
                    flatten(e, max_slot, &mut out);
                    LExpr::Post(out.into())
                }
            },
            _ => {
                let mut out = Vec::new();
                flatten(e, max_slot, &mut out);
                LExpr::Post(out.into())
            }
        },
        Expr::Bin(op, a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Reg(x), Expr::Reg(y)) => LExpr::BinRR(*op, reg(x), reg(y)),
            (Expr::Reg(x), Expr::Const(c)) => LExpr::BinRC(*op, reg(x), *c as i32),
            _ => {
                let mut out = Vec::new();
                flatten(e, max_slot, &mut out);
                LExpr::Post(out.into())
            }
        },
        _ => {
            let mut out = Vec::new();
            flatten(e, max_slot, &mut out);
            LExpr::Post(out.into())
        }
    }
}

/// Applies a binary operator with the engine-shared trap semantics:
/// division by zero (incl. `INT_MIN / -1`) and out-of-range shifts
/// surface as [`SimError`]s, matching the interpreter exactly.
#[inline]
fn bin_eval(op: BinOp, a: i32, b: i32, name: &str) -> Result<i32, SimError> {
    match op.eval(a, b) {
        Some(v) => Ok(v),
        None => Err(match op {
            BinOp::Div | BinOp::Rem => SimError::DivideByZero { function: name.to_owned() },
            _ => SimError::BadShift { amount: b },
        }),
    }
}

/// Matches the `dst += step; IC = dst ? bound; PC = IC cond, target`
/// op triple shared by both closed-form loop shapes, returning the
/// induction register, the signed step, the bound, and the branch.
fn counting_triple(ops: &[Op]) -> Option<(u32, i32, RepBound, Cond, u32)> {
    let [Op::Assign { dst, src }, Op::Compare { lhs, rhs }, Op::CondBranch { cond, target }] = ops
    else {
        return None;
    };
    let step = match src {
        LExpr::BinRC(BinOp::Add, r, c) if r == dst => *c,
        LExpr::BinRC(BinOp::Sub, r, c) if r == dst => 0i32.wrapping_sub(*c),
        _ => return None,
    };
    let bound = match (lhs, rhs) {
        (LExpr::Reg(cr), LExpr::Const(b)) if cr == dst => RepBound::Const(*b),
        // A register bound is sound because the block's only write is to
        // `dst`: the bound register cannot change between iterations.
        (LExpr::Reg(cr), LExpr::Reg(br)) if cr == dst && br != dst => RepBound::Reg(*br),
        _ => return None,
    };
    Some((*dst, step, bound, *cond, *target))
}

/// Recognizes the three-op monotone counting self-loop on the *lowered*
/// ops. `step == 0`, mixed directions, and `Eq`/`Ne` exits all fall
/// through to the generic path (whose fuel budget still bounds them).
fn detect_rep(ops: &[Op]) -> Option<Rep> {
    let (dst, step, bound, cond, target) = counting_triple(ops)?;
    if target == DANGLING {
        return None;
    }
    let le = match (cond, step > 0, step < 0) {
        (Cond::Lt, true, _) => false,
        (Cond::Le, true, _) => true,
        (Cond::Gt, _, true) => false,
        (Cond::Ge, _, true) => true,
        _ => return None,
    };
    Some(Rep { target, dst, step, bound, le })
}

/// Recognizes the rotated two-block counting cycle starting at block
/// `a_idx` (see [`Rep2`]): both halves increment the same register by
/// the same step and compare it against the same bound; the first
/// half's branch exits on the complement of the second half's
/// loop-back condition.
fn detect_rep2(a_ops: &[Op], b_ops: &[Op], a_idx: u32) -> Option<Rep2> {
    let (d1, s1, bound1, cond_exit, exit_odd) = counting_triple(a_ops)?;
    let (d2, s2, bound2, cond_cont, back) = counting_triple(b_ops)?;
    if d1 != d2 || s1 != s2 || bound1 != bound2 || back != a_idx || exit_odd == DANGLING {
        return None;
    }
    let le = match (cond_exit, cond_cont, s1 > 0, s1 < 0) {
        (Cond::Ge, Cond::Lt, true, _) => false,
        (Cond::Gt, Cond::Le, true, _) => true,
        (Cond::Le, Cond::Gt, _, true) => false,
        (Cond::Lt, Cond::Ge, _, true) => true,
        _ => return None,
    };
    Some(Rep2 { dst: d1, step: s1, bound: bound1, le, exit_odd })
}

/// A value in the linear symbolic walk of a candidate while-loop
/// cycle: the value some register held at the current trip's header
/// entry plus a wrapping constant, or a literal. Wrapping offsets
/// compose associatively mod 2³², so chains of copies and `±const`
/// steps stay exact without any overflow reasoning.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Sym {
    Base(u32, i32),
    Lit(i32),
}

impl Sym {
    fn add(self, c: i32) -> Sym {
        match self {
            Sym::Base(r, o) => Sym::Base(r, o.wrapping_add(c)),
            Sym::Lit(v) => Sym::Lit(v.wrapping_add(c)),
        }
    }
}

/// Latest binding wins; unwritten registers are their own base.
fn sym_lookup(subst: &[(u32, Sym)], r: u32) -> Sym {
    subst.iter().rev().find(|(k, _)| *k == r).map_or(Sym::Base(r, 0), |&(_, s)| s)
}

/// Reduces a lowered expression to `V(r) + c` or a literal; anything
/// that loads memory, traps, or is non-linear disqualifies the cycle.
fn sym_resolve(subst: &[(u32, Sym)], e: &LExpr) -> Option<Sym> {
    Some(match e {
        LExpr::Reg(r) => sym_lookup(subst, *r),
        LExpr::Const(c) => Sym::Lit(*c),
        LExpr::BinRC(BinOp::Add, r, c) => sym_lookup(subst, *r).add(*c),
        LExpr::BinRC(BinOp::Sub, r, c) => sym_lookup(subst, *r).add(0i32.wrapping_sub(*c)),
        _ => return None,
    })
}

/// Recognizes the header/latch while-loop starting at block `h_idx`
/// (see [`RepW`]) by symbolically executing one trip: a header of
/// linear assignments ending `IC = i ? bound; PC = IC cond, exit`,
/// falling into a latch of linear assignments that steps `i` by a
/// constant and jumps back. Copy chains through temporaries are folded
/// by the walk, so the copy-laden shapes mid-sequence instances carry
/// (compare on a temp, increment through a temp) qualify too.
fn detect_rep_while(h_ops: &[Op], l_ops: &[Op], h_idx: u32) -> Option<RepW> {
    if h_ops.len() < 2 || l_ops.len() < 2 {
        return None;
    }
    let (h_assigns, h_tail) = h_ops.split_at(h_ops.len() - 2);
    let [Op::Compare { lhs, rhs }, Op::CondBranch { cond, target: exit }] = h_tail else {
        return None;
    };
    let (l_assigns, l_tail) = l_ops.split_at(l_ops.len() - 1);
    let [Op::Jump { target: back }] = l_tail else {
        return None;
    };
    if *back != h_idx || *exit == DANGLING {
        return None;
    }

    // One symbolic trip: header assigns, compare operands, latch assigns.
    let mut subst: Vec<(u32, Sym)> = Vec::new();
    let mut header_written: Vec<u32> = Vec::new();
    for op in h_assigns {
        let Op::Assign { dst, src } = op else { return None };
        let v = sym_resolve(&subst, src)?;
        subst.push((*dst, v));
        header_written.push(*dst);
    }
    let lhs_sym = sym_resolve(&subst, lhs)?;
    let rhs_sym = sym_resolve(&subst, rhs)?;
    let header_end = subst.clone();
    for op in l_assigns {
        let Op::Assign { dst, src } = op else { return None };
        let v = sym_resolve(&subst, src)?;
        subst.push((*dst, v));
    }

    // The induction variable: the compare's left operand must be its
    // unmodified header-entry value, stepped by a constant once per
    // trip in the latch and untouched by the header (so the exit-pass
    // compare sees exactly `r0 + t*step`).
    let Sym::Base(ind, 0) = lhs_sym else { return None };
    if header_written.contains(&ind) {
        return None;
    }
    let step = match sym_lookup(&subst, ind) {
        Sym::Base(r, s) if r == ind && s != 0 => s,
        _ => return None,
    };
    let ge = match (cond, step > 0) {
        (Cond::Ge, true) | (Cond::Le, false) => true,
        (Cond::Gt, true) | (Cond::Lt, false) => false,
        _ => return None,
    };
    let written = |r: u32| subst.iter().any(|&(k, _)| k == r);
    let (bound, bound_off) = match rhs_sym {
        Sym::Lit(v) => (RepBound::Const(v), 0),
        Sym::Base(b, off) if !written(b) => (RepBound::Reg(b), off),
        _ => return None,
    };

    // Every other written register must have a closed-form final:
    // header-written regs take their end-of-header value on the exit
    // pass (base strictly outside the written set, or the induction
    // variable); latch-only regs keep their last-trip value, or are
    // themselves secondary linear counters.
    let mut finals: Vec<(u32, bool, FinalBase, i32)> = Vec::new();
    for i in 0..subst.len() {
        let w = subst[i].0;
        if w == ind || subst[..i].iter().any(|&(k, _)| k == w) {
            continue;
        }
        let in_header = header_written.contains(&w);
        let sym = if in_header { sym_lookup(&header_end, w) } else { sym_lookup(&subst, w) };
        let (base, off) = match sym {
            Sym::Lit(v) => (FinalBase::Lit, v),
            Sym::Base(r, o) if r == ind => (FinalBase::Ind, o),
            Sym::Base(r, o) if !written(r) => (FinalBase::Inv(r), o),
            Sym::Base(r, o) if r == w && !in_header => (FinalBase::SelfLin, o),
            _ => return None,
        };
        finals.push((w, in_header, base, off));
    }

    Some(RepW {
        dst: ind,
        step,
        bound,
        bound_off,
        ge,
        exit: *exit,
        trip_insts: (h_ops.len() + l_ops.len()) as u32,
        exit_insts: h_ops.len() as u32,
        finals: finals.into(),
    })
}

fn lower_block(
    insts: &[Inst],
    resolve: &impl Fn(Label) -> u32,
    fn_index: &HashMap<&str, u32>,
) -> LoweredBlock {
    let mut max_slot = 0u32;
    let mut has_call = false;
    let mut ops = Vec::with_capacity(insts.len());
    for inst in insts {
        let op = match inst {
            Inst::Assign { dst, src } => {
                let d = slot(*dst);
                max_slot = max_slot.max(d);
                Op::Assign { dst: d, src: lower_expr(src, &mut max_slot) }
            }
            Inst::Store { width, addr, src } => Op::Store {
                width: *width,
                addr: lower_expr(addr, &mut max_slot),
                src: lower_expr(src, &mut max_slot),
            },
            Inst::Compare { lhs, rhs } => Op::Compare {
                lhs: lower_expr(lhs, &mut max_slot),
                rhs: lower_expr(rhs, &mut max_slot),
            },
            Inst::CondBranch { cond, target } => {
                Op::CondBranch { cond: *cond, target: resolve(*target) }
            }
            Inst::Jump { target } => Op::Jump { target: resolve(*target) },
            Inst::Call { callee, args, dst } => {
                has_call = true;
                Op::Call {
                    callee: fn_index.get(callee.as_str()).copied(),
                    name: callee.as_str().into(),
                    args: args.iter().map(|a| lower_expr(a, &mut max_slot)).collect(),
                    dst: dst.map(|d| {
                        let s = slot(d);
                        max_slot = max_slot.max(s);
                        s
                    }),
                }
            }
            Inst::Return { value } => {
                Op::Return { value: value.as_ref().map(|v| lower_expr(v, &mut max_slot)) }
            }
        };
        ops.push(op);
    }
    let rep = detect_rep(&ops);
    LoweredBlock { ops: ops.into(), has_call, max_slot, rep }
}

/// Lowers a whole function, sharing blocks through the machine's cache.
pub(crate) fn lower_function(
    f: &Function,
    fn_index: &HashMap<&str, u32>,
    cache: &mut LowerCache,
) -> Arc<LoweredFunction> {
    let mut label_to_idx: HashMap<u32, u32> = HashMap::with_capacity(f.blocks.len());
    for (i, b) in f.blocks.iter().enumerate() {
        label_to_idx.insert(b.label.0, i as u32);
    }
    let resolve = |l: Label| label_to_idx.get(&l.0).copied().unwrap_or(DANGLING);

    let mut blocks = Vec::with_capacity(f.blocks.len());
    let mut max_slot = R13_SLOT as u32;
    for b in &f.blocks {
        let mut key = std::mem::take(&mut cache.key_buf);
        key.clear();
        for inst in &b.insts {
            encode_inst(inst, &resolve, &mut key);
        }
        let lb = match cache.map.get(key.as_slice()) {
            Some(lb) => {
                cache.pending_hits += 1;
                lb.clone()
            }
            None => {
                cache.pending_lowered += 1;
                let lb = Arc::new(lower_block(&b.insts, &resolve, fn_index));
                cache.map.insert(key.as_slice().into(), lb.clone());
                lb
            }
        };
        max_slot = max_slot.max(lb.max_slot);
        blocks.push(lb);
        cache.key_buf = key;
    }
    let param_slots: Box<[u32]> = f.params.iter().map(|&p| slot(p)).collect();
    for &s in param_slots.iter() {
        max_slot = max_slot.max(s);
    }
    let local_sizes: Box<[u32]> = f.locals.iter().map(|l| (l.size + 3) & !3).collect();
    let frame_size = local_sizes.iter().sum();
    let rep2: Box<[Option<PairRep>]> = (0..blocks.len())
        .map(|a| {
            let b = blocks.get(a + 1)?;
            detect_rep2(&blocks[a].ops, &b.ops, a as u32)
                .map(PairRep::Rotated)
                .or_else(|| detect_rep_while(&blocks[a].ops, &b.ops, a as u32).map(PairRep::While))
        })
        .collect();
    Arc::new(LoweredFunction {
        name: f.name.as_str().into(),
        param_slots,
        reg_slots: max_slot + 1,
        local_sizes,
        frame_size,
        blocks: blocks.into(),
        rep2,
    })
}

/// How a block's op stream handed control back to the dispatch loop.
enum Exit {
    /// Ran off the end of the block: fall through positionally.
    Fall,
    /// Taken branch or jump to a resolved block index.
    Jump(u32),
    /// Returned a value.
    Ret(i32),
}

impl<'p> Machine<'p> {
    /// Returns the lowered form of program function `idx`, lowering it on
    /// first use (nested calls resolve here at execution time).
    fn lowered_program_fn(&mut self, idx: u32) -> Arc<LoweredFunction> {
        if let Some(lf) = &self.lowered_fns[idx as usize] {
            return lf.clone();
        }
        let f: &'p Function = &self.program.functions[idx as usize];
        let lf = lower_function(f, &self.fn_index, &mut self.lower_cache);
        self.lowered_fns[idx as usize] = Some(lf.clone());
        lf
    }

    /// Threaded-engine entry point by program-function name; mirrors the
    /// interpreter's `call_inner` error behavior for unknown names.
    pub(crate) fn call_threaded(
        &mut self,
        name: &str,
        args: &[i32],
        depth: usize,
    ) -> Result<i32, SimError> {
        let Some(idx) = self.fn_index.get(name).copied() else {
            return Err(SimError::UnknownFunction(name.to_owned()));
        };
        let lf = self.lowered_program_fn(idx);
        self.exec_threaded(&lf, args, depth)
    }

    /// The threaded dispatch loop. Bit-identical to `Machine::exec`: same
    /// return values, memory effects, dynamic counts, block-entry counts,
    /// error classification, and fuel-exhaustion point.
    pub(crate) fn exec_threaded(
        &mut self,
        lf: &LoweredFunction,
        args: &[i32],
        depth: usize,
    ) -> Result<i32, SimError> {
        if depth > MAX_DEPTH {
            return Err(SimError::StackOverflow);
        }
        if lf.frame_size + 64 > self.stack_top {
            return Err(SimError::OutOfStack);
        }
        let frame_base = self.stack_top - lf.frame_size;
        let saved_top = self.stack_top;
        self.stack_top = frame_base;

        let mut regs = self.regfile_pool.pop().unwrap_or_default();
        regs.clear();
        regs.resize(lf.reg_slots as usize, 0);
        regs[R13_SLOT] = saved_top as i32;
        for (i, &s) in lf.param_slots.iter().enumerate() {
            regs[s as usize] = args.get(i).copied().unwrap_or(0);
        }
        let mut local_addr = self.local_pool.pop().unwrap_or_default();
        local_addr.clear();
        {
            let mut a = frame_base;
            for &sz in lf.local_sizes.iter() {
                local_addr.push(a);
                a += sz;
            }
        }
        let mut cc = (0i32, 0i32);
        let counting = depth == 0 && self.block_counts.is_some();
        if counting {
            if let Some(c) = self.block_counts.as_mut() {
                if let Some(s) = c.get_mut(0) {
                    *s += 1;
                }
            }
        }

        let mut bi = 0usize;
        let result = 'run: loop {
            let Some(blk) = lf.blocks.get(bi) else {
                break 'run Err(SimError::MissingReturn(lf.name.to_string()));
            };
            if let Some(rep) = &blk.rep {
                if rep.target as usize == bi && self.try_rep(rep, bi, &mut regs, &mut cc, counting)
                {
                    bi += 1;
                    if counting {
                        if let Some(c) = self.block_counts.as_mut() {
                            if let Some(s) = c.get_mut(bi) {
                                *s += 1;
                            }
                        }
                    }
                    continue 'run;
                }
            }
            if let Some(pair) = lf.rep2[bi].as_ref() {
                let next = match pair {
                    PairRep::Rotated(r2) => self.try_rep2(r2, bi, &mut regs, &mut cc, counting),
                    PairRep::While(rw) => self.try_rep_while(rw, bi, &mut regs, &mut cc, counting),
                };
                if let Some(next) = next {
                    bi = next;
                    if counting {
                        if let Some(c) = self.block_counts.as_mut() {
                            if let Some(s) = c.get_mut(bi) {
                                *s += 1;
                            }
                        }
                    }
                    continue 'run;
                }
            }
            let len = blk.ops.len() as u64;
            let careful = blk.has_call || self.fuel.saturating_sub(self.dynamic) < len;
            let mut k: u64 = 0;
            let mut exit = Exit::Fall;
            let mut fault: Option<SimError> = None;
            for op in blk.ops.iter() {
                if careful && self.dynamic + k >= self.fuel {
                    fault = Some(SimError::OutOfFuel);
                    break;
                }
                k += 1;
                match self.step_op(op, &mut regs, &local_addr, &mut cc, &lf.name, depth, &mut k) {
                    Ok(None) => {}
                    Ok(Some(e)) => {
                        exit = e;
                        break;
                    }
                    Err(e) => {
                        fault = Some(e);
                        break;
                    }
                }
            }
            self.dynamic += k;
            if let Some(e) = fault {
                break 'run Err(e);
            }
            if !careful && len > 0 {
                self.pending_retires += 1;
            }
            match exit {
                Exit::Ret(v) => break 'run Ok(v),
                Exit::Jump(t) => {
                    if t == DANGLING {
                        panic!("dangling branch target");
                    }
                    bi = t as usize;
                    if counting {
                        if let Some(c) = self.block_counts.as_mut() {
                            c[bi] += 1;
                        }
                    }
                }
                Exit::Fall => {
                    bi += 1;
                    if counting {
                        if let Some(c) = self.block_counts.as_mut() {
                            if let Some(s) = c.get_mut(bi) {
                                *s += 1;
                            }
                        }
                    }
                }
            }
        };
        self.regfile_pool.push(std::mem::take(&mut regs));
        self.local_pool.push(std::mem::take(&mut local_addr));
        self.stack_top = saved_top;
        result
    }

    /// Executes one lowered op. `Ok(None)` falls through to the next op;
    /// `Ok(Some(exit))` transfers control. `k` is the block's pending
    /// dynamic credit — a call flushes it first because the callee shares
    /// the fuel budget.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn step_op(
        &mut self,
        op: &Op,
        regs: &mut [i32],
        local_addr: &[u32],
        cc: &mut (i32, i32),
        name: &str,
        depth: usize,
        k: &mut u64,
    ) -> Result<Option<Exit>, SimError> {
        match op {
            Op::Assign { dst, src } => {
                let v = self.eval_lexpr(src, regs, local_addr, name)?;
                regs[*dst as usize] = v;
            }
            Op::Store { width, addr, src } => {
                let a = self.eval_lexpr(addr, regs, local_addr, name)? as u32;
                let v = self.eval_lexpr(src, regs, local_addr, name)?;
                self.write(a, v, *width, name)?;
            }
            Op::Compare { lhs, rhs } => {
                let a = self.eval_lexpr(lhs, regs, local_addr, name)?;
                let b = self.eval_lexpr(rhs, regs, local_addr, name)?;
                *cc = (a, b);
            }
            Op::CondBranch { cond, target } => {
                if cond.eval(cc.0, cc.1) {
                    return Ok(Some(Exit::Jump(*target)));
                }
            }
            Op::Jump { target } => return Ok(Some(Exit::Jump(*target))),
            Op::Call { callee, name: cname, args, dst } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args.iter() {
                    vals.push(self.eval_lexpr(a, regs, local_addr, name)?);
                }
                self.dynamic += *k;
                *k = 0;
                let Some(ci) = callee else {
                    return Err(SimError::UnknownFunction(cname.to_string()));
                };
                let clf = self.lowered_program_fn(*ci);
                let r = self.exec_threaded(&clf, &vals, depth + 1)?;
                if let Some(d) = dst {
                    regs[*d as usize] = r;
                }
            }
            Op::Return { value } => {
                let v = match value {
                    Some(e) => self.eval_lexpr(e, regs, local_addr, name)?,
                    None => 0,
                };
                return Ok(Some(Exit::Ret(v)));
            }
        }
        Ok(None)
    }

    #[inline]
    fn eval_lexpr(
        &mut self,
        e: &LExpr,
        regs: &[i32],
        local_addr: &[u32],
        name: &str,
    ) -> Result<i32, SimError> {
        Ok(match e {
            LExpr::Reg(s) => regs[*s as usize],
            LExpr::Const(c) => *c,
            LExpr::Hi(s) => (self.global_addr[*s as usize] & !0xFFF) as i32,
            LExpr::Lo(s) => (self.global_addr[*s as usize] & 0xFFF) as i32,
            LExpr::Local(l) => local_addr[*l as usize] as i32,
            LExpr::LoadR(w, s) => self.read(regs[*s as usize] as u32, *w, name)?,
            LExpr::LoadRC(w, s, c) => {
                self.read(regs[*s as usize].wrapping_add(*c) as u32, *w, name)?
            }
            LExpr::BinRR(op, a, b) => bin_eval(*op, regs[*a as usize], regs[*b as usize], name)?,
            LExpr::BinRC(op, a, c) => bin_eval(*op, regs[*a as usize], *c, name)?,
            LExpr::Post(ops) => self.eval_post(ops, regs, local_addr, name)?,
        })
    }

    fn eval_post(
        &mut self,
        ops: &[EOp],
        regs: &[i32],
        local_addr: &[u32],
        name: &str,
    ) -> Result<i32, SimError> {
        self.eval_stack.clear();
        for op in ops {
            let v = match op {
                EOp::Reg(s) => regs[*s as usize],
                EOp::Const(c) => *c,
                EOp::Hi(s) => (self.global_addr[*s as usize] & !0xFFF) as i32,
                EOp::Lo(s) => (self.global_addr[*s as usize] & 0xFFF) as i32,
                EOp::Local(l) => local_addr[*l as usize] as i32,
                EOp::Un(op) => {
                    let a = self.eval_stack.pop().expect("postfix underflow");
                    op.eval(a)
                }
                EOp::Bin(op) => {
                    let b = self.eval_stack.pop().expect("postfix underflow");
                    let a = self.eval_stack.pop().expect("postfix underflow");
                    bin_eval(*op, a, b, name)?
                }
                EOp::Load(w) => {
                    let a = self.eval_stack.pop().expect("postfix underflow") as u32;
                    self.read(a, *w, name)?
                }
            };
            self.eval_stack.push(v);
        }
        Ok(self.eval_stack.pop().expect("postfix underflow"))
    }

    /// Retires a whole monotone counting loop in closed form. Returns
    /// `false` when the fast path does not apply — the real loop would
    /// wrap 32-bit arithmetic, or fuel runs out mid-loop — in which case
    /// the caller executes the block the slow, exact way.
    fn try_rep(
        &mut self,
        rep: &Rep,
        bi: usize,
        regs: &mut [i32],
        cc: &mut (i32, i32),
        counting: bool,
    ) -> bool {
        let r0 = regs[rep.dst as usize] as i64;
        let step = rep.step as i64;
        let bound_v = match rep.bound {
            RepBound::Const(c) => c,
            RepBound::Reg(r) => regs[r as usize],
        };
        let bound = bound_v as i64;
        // Normalize the decreasing case onto the increasing one (i64 math,
        // so negating i32::MIN is fine).
        let (r0n, stepn, boundn) = if step > 0 { (r0, step, bound) } else { (-r0, -step, -bound) };
        // Smallest t >= 1 with r0n + t*stepn >= boundn (strictly greater
        // when the loop continues on equality).
        let need = boundn - r0n + if rep.le { 1 } else { 0 };
        let t = if need <= stepn { 1 } else { (need + stepn - 1) / stepn };
        let finaln = r0n + t * stepn;
        let final_v = if step > 0 { finaln } else { -finaln };
        if final_v < i32::MIN as i64 || final_v > i32::MAX as i64 {
            return false;
        }
        let insts = 3 * t as u64;
        if self.fuel.saturating_sub(self.dynamic) < insts {
            return false;
        }
        regs[rep.dst as usize] = final_v as i32;
        *cc = (final_v as i32, bound_v);
        self.dynamic += insts;
        self.pending_retires += 1;
        if counting && t > 1 {
            if let Some(c) = self.block_counts.as_mut() {
                c[bi] += (t - 1) as u64;
            }
        }
        true
    }

    /// Retires a rotated two-block counting cycle (see [`Rep2`]) in
    /// closed form, returning the continuation block index: the first
    /// half's branch target when the exit fires on an odd trip, the
    /// fall-through past the pair on an even one. `None` when the fast
    /// path does not apply (32-bit wrap, or not enough fuel for the
    /// whole loop) — the caller then runs the blocks the slow, exact
    /// way. The trip count `t` counts increments; each costs exactly
    /// three instructions whichever half it runs in.
    fn try_rep2(
        &mut self,
        r2: &Rep2,
        bi: usize,
        regs: &mut [i32],
        cc: &mut (i32, i32),
        counting: bool,
    ) -> Option<usize> {
        let r0 = regs[r2.dst as usize] as i64;
        let step = r2.step as i64;
        let bound_v = match r2.bound {
            RepBound::Const(c) => c,
            RepBound::Reg(r) => regs[r as usize],
        };
        let bound = bound_v as i64;
        let (r0n, stepn, boundn) = if step > 0 { (r0, step, bound) } else { (-r0, -step, -bound) };
        let need = boundn - r0n + if r2.le { 1 } else { 0 };
        let t = if need <= stepn { 1 } else { (need + stepn - 1) / stepn };
        let finaln = r0n + t * stepn;
        let final_v = if step > 0 { finaln } else { -finaln };
        if final_v < i32::MIN as i64 || final_v > i32::MAX as i64 {
            return None;
        }
        let insts = 3 * t as u64;
        if self.fuel.saturating_sub(self.dynamic) < insts {
            return None;
        }
        regs[r2.dst as usize] = final_v as i32;
        *cc = (final_v as i32, bound_v);
        self.dynamic += insts;
        self.pending_retires += 1;
        if counting {
            if let Some(c) = self.block_counts.as_mut() {
                // Odd trips run in the first half, even ones in the
                // second; the dispatch loop already counted this entry
                // to the first half.
                c[bi] += (t as u64).div_ceil(2) - 1;
                if t >= 2 {
                    if let Some(s) = c.get_mut(bi + 1) {
                        *s += t as u64 / 2;
                    }
                }
            }
        }
        Some(if t % 2 == 1 { r2.exit_odd as usize } else { bi + 2 })
    }

    /// Retires a header/latch while-loop (see [`RepW`]) in closed form,
    /// returning the header's exit target. Unlike the do-while shapes
    /// the exit test precedes each increment, so the trip count `t` may
    /// be zero; each trip costs `trip_insts` (header + latch) and the
    /// final exit test another `exit_insts` (header only).
    fn try_rep_while(
        &mut self,
        rw: &RepW,
        bi: usize,
        regs: &mut [i32],
        cc: &mut (i32, i32),
        counting: bool,
    ) -> Option<usize> {
        let r0 = regs[rw.dst as usize] as i64;
        let step = rw.step as i64;
        let bound_v = match rw.bound {
            RepBound::Const(c) => c,
            RepBound::Reg(r) => regs[r as usize].wrapping_add(rw.bound_off),
        };
        let bound = bound_v as i64;
        let (r0n, stepn, boundn) = if step > 0 { (r0, step, bound) } else { (-r0, -step, -bound) };
        // Smallest t >= 0 with r0n + t*stepn >= boundn (strictly greater
        // when the exit spares equality).
        let need = boundn - r0n + if rw.ge { 0 } else { 1 };
        let t = if need <= 0 { 0 } else { (need + stepn - 1) / stepn };
        let finaln = r0n + t * stepn;
        let final_v = if step > 0 { finaln } else { -finaln };
        if final_v < i32::MIN as i64 || final_v > i32::MAX as i64 {
            return None;
        }
        let insts = t as u64 * rw.trip_insts as u64 + rw.exit_insts as u64;
        if self.fuel.saturating_sub(self.dynamic) < insts {
            return None;
        }
        // The induction trajectory is exact (checked in range above);
        // every other final is a wrapping offset from an exact or
        // invariant base — precisely what the per-trip wrapping adds
        // would have produced mod 2³².
        let i_final = final_v as i32;
        // Induction value at the last full trip's header entry; only
        // read when `t >= 1`, so the truncation is never observed.
        let i_last = (final_v - step) as i32;
        for &(w, in_header, base, off) in rw.finals.iter() {
            if !in_header && t == 0 {
                continue; // the latch never ran
            }
            regs[w as usize] = match base {
                FinalBase::Ind => (if in_header { i_final } else { i_last }).wrapping_add(off),
                FinalBase::Inv(r) => regs[r as usize].wrapping_add(off),
                FinalBase::Lit => off,
                FinalBase::SelfLin => regs[w as usize].wrapping_add((t as i32).wrapping_mul(off)),
            };
        }
        regs[rw.dst as usize] = i_final;
        *cc = (i_final, bound_v);
        self.dynamic += insts;
        self.pending_retires += 1;
        if counting {
            if let Some(c) = self.block_counts.as_mut() {
                // The header runs t + 1 times (the dispatch loop already
                // counted this entry), the latch t times.
                c[bi] += t as u64;
                if t >= 1 {
                    if let Some(s) = c.get_mut(bi + 1) {
                        *s += t as u64;
                    }
                }
            }
        }
        Some(rw.exit as usize)
    }
}
