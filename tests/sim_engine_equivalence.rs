//! The direct-threaded simulator engine must be bit-identical to the
//! tree-walking reference interpreter: same return values, same globals
//! digests, same dynamic instruction counts, same block-entry counts,
//! and the same error classification, on every input. These tests are
//! the contract that lets `SimEngine::Threaded` be the default while
//! `SimEngine::Interp` remains a living witness — the simulator twin of
//! `engine_equivalence.rs`.

mod common;

use common::{apply_sequence, gen_seq};
use epo::explore::enumerate::{enumerate, Config};
use epo::explore::oracle::{self, OracleConfig};
use epo::explore::rng::Rng;
use epo::frontend::fuzz::{FuzzProgram, ENTRY};
use epo::opt::Target;
use epo::sim::{Machine, SimEngine, SimError};
use exhaustive_phase_order as epo;

/// Everything one simulation observes: outcome (value or error), globals
/// digest, dynamic instruction count, and per-block entry counts.
type Trace = (Result<i32, SimError>, u32, u64, Option<Vec<u64>>);

/// Runs `f` on `args` under `engine` in a fresh machine.
fn trace(
    program: &epo::rtl::Program,
    f: &epo::rtl::Function,
    args: &[i32],
    engine: SimEngine,
    counted: bool,
) -> Trace {
    let mut m = Machine::new(program);
    m.set_engine(engine);
    m.set_fuel(2_000_000);
    let (r, counts) = if counted {
        match m.call_instance_counted(f, args) {
            Ok((v, c)) => (Ok(v), Some(c)),
            Err(e) => (Err(e), None),
        }
    } else {
        (m.call_instance(f, args), None)
    };
    (r, m.globals_crc(), m.dynamic_insts(), counts)
}

/// Asserts both engines produce the same trace, returning it.
fn assert_trace_identical(
    name: &str,
    program: &epo::rtl::Program,
    f: &epo::rtl::Function,
    args: &[i32],
    counted: bool,
) -> Trace {
    let interp = trace(program, f, args, SimEngine::Interp, counted);
    let threaded = trace(program, f, args, SimEngine::Threaded, counted);
    assert_eq!(interp, threaded, "{name}: engines diverged on args {args:?}");
    threaded
}

/// The nine pinned kernels spanning all six MiBench benchmarks: each
/// one's full oracle battery must verify identically on both engines.
const KERNELS: &[(&str, &str)] = &[
    ("bitcount", "bit_count"),
    ("bitcount", "bit_shifter"),
    ("bitcount", "ntbl_bitcount"),
    ("dijkstra", "dequeue"),
    ("fft", "fix_mpy"),
    ("fft", "reverse_bits"),
    ("jpeg", "range_limit"),
    ("sha", "rotl"),
    ("stringsearch", "lower"),
];

/// Full oracle batteries over the nine kernels: enumerate each space
/// once, verify it on each engine, and demand bit-identical reports —
/// observations, findings, leaf dynamics, best-leaf choice, everything
/// `OracleReport` carries.
#[test]
fn oracle_batteries_are_engine_invariant_on_the_kernel_suite() {
    let target = Target::default();
    let enum_config = Config { max_nodes: 5_000, ..Config::default() };
    let oracle_config = OracleConfig { battery: 3, ..OracleConfig::default() };
    for (bench_name, func) in KERNELS {
        let bench = epo::benchmarks::find(bench_name).unwrap();
        let program = bench.compile().unwrap();
        let f = program.function(func).unwrap();
        let e = enumerate(f, &target, &enum_config);
        let interp = oracle::verify(
            &program,
            f,
            &e,
            &target,
            &OracleConfig { engine: SimEngine::Interp, ..oracle_config.clone() },
        );
        let threaded = oracle::verify(
            &program,
            f,
            &e,
            &target,
            &OracleConfig { engine: SimEngine::Threaded, ..oracle_config.clone() },
        );
        assert_eq!(interp, threaded, "{bench_name}::{func}: oracle reports diverged");
        assert!(
            threaded.is_clean(),
            "{bench_name}::{func}: oracle findings: {:#?}",
            threaded.findings
        );
        assert_eq!(threaded.instances, e.space.len(), "{bench_name}::{func}");
    }
}

/// ≥200 fuzz programs, each compiled, optimized under a random phase
/// order, and executed on both engines with identical traces — results,
/// CRCs, dynamic counts, and (every few cases) block-entry counts.
#[test]
fn fuzz_corpus_traces_are_engine_invariant() {
    let target = Target::default();
    for seed in 0..220u64 {
        let mut rng = Rng::seed_from_u64(0x51E_E9E ^ seed);
        let fp = FuzzProgram::generate(&mut rng);
        let program = fp.compile().unwrap_or_else(|e| {
            panic!("seed {seed}: generated source failed to compile: {e}\n{}", fp.source)
        });
        let seq = gen_seq(&mut rng, 0..8);
        let (optimized, _) = apply_sequence(program.function(ENTRY).unwrap(), &seq, &target);
        for naive in [true, false] {
            let f = if naive { program.function(ENTRY).unwrap() } else { &optimized };
            let args = FuzzProgram::gen_args(&mut rng);
            let counted = seed % 4 == 0;
            let (r, _, _, _) = assert_trace_identical(
                &format!("seed {seed} naive={naive}\n{}", fp.source),
                &program,
                f,
                &args,
                counted,
            );
            // Fuzz programs never trap on generated inputs; a trap here
            // means the case lost its teeth, not that the engines agree.
            let expected = fp.reference(args);
            assert_eq!(r, Ok(expected), "seed {seed}, args {args:?}:\n{}", fp.source);
        }
    }
}

/// Error classification is engine-invariant: out-of-fuel, stack
/// exhaustion (`OutOfStack`), deep recursion (`StackOverflow`),
/// `INT_MIN / -1`, division by zero, bad shifts, and out-of-bounds
/// loads/stores must be the *same* error with the *same* partial trace
/// on both engines.
#[test]
fn error_classification_is_engine_invariant() {
    let cases: &[(&str, &str, Vec<Vec<i32>>)] = &[
        (
            "div traps",
            "int f(int a, int b) { return a / b; }",
            vec![vec![7, 0], vec![i32::MIN, -1], vec![10, 3]],
        ),
        (
            "rem traps",
            "int f(int a, int b) { return a % b; }",
            vec![vec![7, 0], vec![i32::MIN, -1]],
        ),
        (
            "shift range",
            "int f(int a, int b) { return a << b; }",
            vec![vec![1, 40], vec![1, -1], vec![1, 31]],
        ),
        (
            "oob store",
            "int g[4]; int f(int i) { g[i] = 1; return g[0]; }",
            vec![vec![100000000], vec![-1], vec![3]],
        ),
        ("oob load", "int g[4]; int f(int i) { return g[i]; }", vec![vec![90000000], vec![2]]),
        (
            "unbounded loop hits fuel",
            "int f(int n) { int s; s = 0; while (n < 1) s += 1; return s; }",
            vec![vec![0], vec![1]],
        ),
        ("infinite recursion overflows depth", "int f(int n) { return f(n + 1); }", vec![vec![0]]),
    ];
    for (name, src, batteries) in cases {
        let program = epo::frontend::compile(src).unwrap();
        let f = program.function("f").unwrap();
        for args in batteries {
            let (r, _, _, _) = assert_trace_identical(name, &program, f, args, true);
            if name.contains("fuel") && args[0] < 1 {
                assert_eq!(r, Err(SimError::OutOfFuel), "{name}");
            }
        }
    }

    // OutOfStack needs a frame that cannot fit: a huge local array on a
    // tiny machine. Both engines must refuse identically before running
    // any code.
    let program =
        epo::frontend::compile("int f(int n) { int big[6000]; big[0] = n; return big[0]; }")
            .unwrap();
    let f = program.function("f").unwrap();
    let mut results = Vec::new();
    for engine in [SimEngine::Interp, SimEngine::Threaded] {
        let mut m = Machine::with_mem_size(&program, 1 << 14);
        m.set_engine(engine);
        results.push((m.call_instance(f, &[5]), m.dynamic_insts()));
    }
    assert_eq!(results[0], results[1], "OutOfStack diverged");
    assert_eq!(results[0].0, Err(SimError::OutOfStack));
}

/// Dynamic-count crediting is exact under batching: for every kernel
/// workload, `set_fuel(n)` with n = the exact dynamic count succeeds and
/// n−1 fails with `OutOfFuel`, identically on both engines.
#[test]
fn fuel_boundaries_are_exact_on_kernel_workloads() {
    for (bench_name, func, args) in common::quick_workloads() {
        let bench = epo::benchmarks::find(bench_name).unwrap();
        let program = bench.compile().unwrap();
        let f = program.function(func).unwrap();
        let mut m = Machine::new(&program);
        m.call_instance(f, &args).unwrap_or_else(|e| panic!("{bench_name}::{func}: {e}"));
        let n = m.dynamic_insts();
        for engine in [SimEngine::Interp, SimEngine::Threaded] {
            let mut m = Machine::new(&program);
            m.set_engine(engine);
            m.set_fuel(n);
            assert!(m.call_instance(f, &args).is_ok(), "{bench_name}::{func} fuel={n} {engine:?}");
            assert_eq!(m.dynamic_insts(), n, "{bench_name}::{func} {engine:?}");
            if n > 0 {
                m.reset();
                m.set_fuel(n - 1);
                let r = m.call_instance(f, &args);
                assert_eq!(r, Err(SimError::OutOfFuel), "{bench_name}::{func} {engine:?}");
                assert_eq!(m.dynamic_insts(), n - 1, "{bench_name}::{func} {engine:?}");
            }
        }
    }
}
