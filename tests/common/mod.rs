//! Shared helpers for the top-level integration tests.
//!
//! Each integration test is its own crate; this directory module is the
//! one place for the phase-sequence and workload plumbing that several of
//! them need (previously duplicated per file).

// Each test binary uses a subset of these helpers.
#![allow(dead_code)]

use epo::explore::rng::Rng;
use epo::opt::{attempt, PhaseId, Target};
use exhaustive_phase_order as epo;

/// Applies a sequence of phase indices (mod 15) to a clone of `f`,
/// returning the optimized instance and how many phases were active.
pub fn apply_sequence(
    f: &epo::rtl::Function,
    seq: &[u8],
    target: &Target,
) -> (epo::rtl::Function, usize) {
    let mut g = f.clone();
    let mut active = 0;
    for &s in seq {
        let phase = PhaseId::from_index(s as usize % PhaseId::COUNT);
        if attempt(&mut g, phase, target).active {
            active += 1;
        }
    }
    (g, active)
}

/// MiBench workloads with small dynamic footprints, to keep randomized
/// properties fast: `(benchmark, function, args)`.
pub fn quick_workloads() -> Vec<(&'static str, &'static str, Vec<i32>)> {
    vec![
        ("bitcount", "bit_count", vec![0x12345678]),
        ("bitcount", "bitcount_parallel", vec![-559038737]),
        ("bitcount", "ntbl_bitcount", vec![0x0F0F1234]),
        ("bitcount", "bit_shifter", vec![0x00FF00FF]),
        ("dijkstra", "dijkstra", vec![0, 4]),
        ("fft", "fix_mpy", vec![12345, -6789]),
        ("fft", "reverse_bits", vec![0b1011, 4]),
        ("jpeg", "ycc_y", vec![200, 100, 50]),
        ("jpeg", "range_limit", vec![300]),
        ("jpeg", "jpeg_nbits", vec![-100000]),
        ("sha", "rotl", vec![0x40000001u32 as i32, 13]),
        ("sha", "byte_reverse", vec![0x11223344]),
        ("stringsearch", "lower", vec!['Q' as i32]),
    ]
}

/// Draws a random phase-index sequence with a length in `len` (half-open).
pub fn gen_seq(rng: &mut Rng, len: std::ops::Range<usize>) -> Vec<u8> {
    (0..rng.gen_range(len)).map(|_| rng.gen_range(0..15) as u8).collect()
}
