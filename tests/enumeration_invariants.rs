//! Structural invariants of the exhaustive enumeration engine, checked
//! over real benchmark functions.

use exhaustive_phase_order as epo;

use epo::explore::enumerate::{enumerate, Config, ReplayMode};
use epo::explore::NodeId;
use epo::opt::{attempt, PhaseId, Target};

/// Small-but-interesting functions from across the suite.
fn sample_functions(max_insts: usize) -> Vec<(String, epo::rtl::Function)> {
    let mut out = Vec::new();
    for b in epo::benchmarks::all() {
        let p = b.compile().unwrap();
        for f in p.functions {
            if f.inst_count() <= max_insts {
                out.push((format!("{}::{}", b.name, f.name), f));
            }
        }
    }
    out
}

#[test]
fn enumeration_is_deterministic() {
    let target = Target::default();
    for (name, f) in sample_functions(45) {
        let a = enumerate(&f, &target, &Config::default());
        let b = enumerate(&f, &target, &Config::default());
        assert_eq!(a.space.len(), b.space.len(), "{name}");
        assert_eq!(a.stats.attempted_phases, b.stats.attempted_phases, "{name}");
        assert_eq!(a.space.leaf_count(), b.space.leaf_count(), "{name}");
        // Node-by-node identity.
        for (id, na) in a.space.iter() {
            let nb = b.space.node(id);
            assert_eq!(na.fp, nb.fp, "{name}: node {id}");
            assert_eq!(na.active_mask, nb.active_mask, "{name}: node {id}");
        }
    }
}

#[test]
fn paranoid_mode_finds_no_fingerprint_collisions() {
    // The paper: "we have never encountered an instance" of distinct
    // function instances detected as identical. Neither have we.
    let target = Target::default();
    let config = Config { paranoid: true, ..Config::default() };
    for (name, f) in sample_functions(60) {
        let e = enumerate(&f, &target, &config);
        assert_eq!(e.stats.collisions, 0, "{name} had fingerprint collisions");
    }
}

#[test]
fn weights_and_leaves_are_consistent() {
    let target = Target::default();
    for (name, f) in sample_functions(50) {
        let e = enumerate(&f, &target, &Config::default());
        if !e.outcome.is_complete() {
            continue;
        }
        let space = &e.space;
        // Every leaf weighs exactly 1; interior nodes weigh the sum of
        // their children; the root weight bounds the leaf count.
        for (id, n) in space.iter() {
            if n.is_leaf() {
                assert_eq!(n.weight, 1, "{name}: leaf {id}");
            } else {
                let sum: u64 = n.children.iter().map(|&(_, c)| space.node(c).weight).sum();
                assert_eq!(n.weight, sum, "{name}: node {id}");
            }
        }
        assert!(space.node(space.root()).weight >= space.leaf_count() as u64, "{name}");
    }
}

#[test]
fn edges_mirror_active_masks() {
    let target = Target::default();
    for (name, f) in sample_functions(45) {
        let e = enumerate(&f, &target, &Config::default());
        for (id, n) in e.space.iter() {
            let from_mask: usize =
                (0..PhaseId::COUNT).filter(|i| n.active_mask >> i & 1 == 1).count();
            assert_eq!(from_mask, n.children.len(), "{name}: node {id} mask/edge mismatch");
            for (p, c) in &n.children {
                assert!(n.is_active(*p), "{name}: edge without active bit");
                assert!(c.0 < e.space.len() as u32, "{name}: dangling edge");
            }
        }
    }
}

#[test]
fn every_instance_is_reachable_and_legal() {
    // Rematerialize every instance by replaying its discovery sequence and
    // check (a) the fingerprint matches and (b) the code is legal.
    let target = Target::default();
    for (name, f) in sample_functions(40) {
        let e = enumerate(&f, &target, &Config::default());
        if !e.outcome.is_complete() {
            continue;
        }
        for (id, node) in e.space.iter() {
            let mut seq = Vec::new();
            let mut cur: NodeId = id;
            while let Some((parent, phase)) = e.space.node(cur).discovered_from {
                seq.push(phase);
                cur = parent;
            }
            seq.reverse();
            let mut g = f.clone();
            for &p in &seq {
                let outcome = attempt(&mut g, p, &target);
                assert!(outcome.active, "{name}: discovery edge {p:?} dormant on replay");
            }
            assert_eq!(
                epo::rtl::canon::fingerprint(&g),
                node.fp,
                "{name}: node {id} replay mismatch"
            );
            target.check_function(&g).unwrap_or_else(|err| panic!("{name}: {err}"));
        }
    }
}

#[test]
fn naive_replay_and_prefix_sharing_agree() {
    let target = Target::default();
    for (name, f) in sample_functions(35) {
        let fast = enumerate(&f, &target, &Config::default());
        let slow = enumerate(
            &f,
            &target,
            &Config { replay: ReplayMode::NaiveReplay, ..Config::default() },
        );
        assert_eq!(fast.space.len(), slow.space.len(), "{name}");
        assert_eq!(fast.space.leaf_count(), slow.space.leaf_count(), "{name}");
        assert!(
            slow.stats.phases_applied >= fast.stats.phases_applied,
            "{name}: replay should cost at least as much"
        );
    }
}

#[test]
fn too_big_outcome_is_honest() {
    let target = Target::default();
    let b = epo::benchmarks::all().into_iter().find(|b| b.name == "dijkstra").unwrap();
    let p = b.compile().unwrap();
    let f = p.function("dijkstra").unwrap();
    // With a tiny node budget the search must report TooBig...
    let small = enumerate(&f.clone(), &target, &Config { max_nodes: 50, ..Config::default() });
    assert!(!small.outcome.is_complete());
    // ...and with the default budget it completes.
    let full = enumerate(f, &target, &Config::default());
    assert!(full.outcome.is_complete());
    assert!(full.space.len() > 50);
}
