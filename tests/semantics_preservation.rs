//! The bedrock invariant of the whole study: **any** legal ordering of
//! optimization phases preserves program semantics. Random phase
//! sequences are applied to real benchmark kernels and checked against
//! the naive code's behaviour in the simulator.
//!
//! Formerly proptest properties; the hermetic build policy (no registry
//! crates — see `DESIGN.md`) replaced the strategies with the in-tree
//! seeded generator `phase_order::rng::Rng`.

mod common;

use common::{apply_sequence, gen_seq, quick_workloads};
use epo::explore::rng::Rng;
use epo::opt::{attempt, PhaseId, Target};
use epo::sim::Machine;
use exhaustive_phase_order as epo;

/// Random phase orders never change observable behaviour.
#[test]
fn random_phase_orders_preserve_semantics() {
    for seed in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0xBEDB_0001 ^ seed);
        let seq = gen_seq(&mut rng, 1..12);
        let pick = rng.gen_range(0..quick_workloads().len());
        let (bench_name, func, args) = quick_workloads().swap_remove(pick);
        let bench = epo::benchmarks::all().into_iter().find(|b| b.name == bench_name).unwrap();
        let program = bench.compile().unwrap();
        let f = program.function(func).unwrap();
        let target = Target::default();
        let (optimized, _) = apply_sequence(f, &seq, &target);

        // The optimized instance must still be legal machine code.
        target.check_function(&optimized).unwrap();

        let mut m1 = Machine::new(&program);
        let expected = m1.call(func, &args).unwrap();
        let mut m2 = Machine::new(&program);
        let got = m2.call_instance(&optimized, &args).unwrap();
        assert_eq!(expected, got, "seed {seed}: sequence {seq:?} broke {bench_name}::{func}");
    }
}

/// Optimization never increases the dynamic instruction count by much
/// (loop rotation may add a couple of static instructions but the
/// dynamic count should never blow up), and often reduces it.
#[test]
fn random_phase_orders_do_not_pessimize_wildly() {
    let bench = epo::benchmarks::all().into_iter().find(|b| b.name == "bitcount").unwrap();
    let program = bench.compile().unwrap();
    let f = program.function("bit_count").unwrap();
    let target = Target::default();
    for seed in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0xBEDB_0002 ^ seed);
        let seq = gen_seq(&mut rng, 1..10);
        let (optimized, _) = apply_sequence(f, &seq, &target);

        let mut m1 = Machine::new(&program);
        m1.call("bit_count", &[0x5555]).unwrap();
        let naive = m1.dynamic_insts();
        let mut m2 = Machine::new(&program);
        m2.call_instance(&optimized, &[0x5555]).unwrap();
        let opt = m2.dynamic_insts();
        assert!(
            opt <= naive * 2,
            "seed {seed}: dynamic count exploded: {naive} -> {opt} via {seq:?}"
        );
    }
}

/// Deterministic exhaustive variant for small sequences: all pairs of
/// phases over a tiny function.
#[test]
fn all_phase_pairs_preserve_semantics() {
    let program = epo::frontend::compile(
        "int f(int a, int b) { int x = a * 4; if (x > b) return x - b; return b - x; }",
    )
    .unwrap();
    let f = &program.functions[0];
    let target = Target::default();
    let mut m = Machine::new(&program);
    let expected: Vec<i32> = [(3, 5), (100, 7), (-4, 12), (0, 0)]
        .iter()
        .map(|&(a, b)| m.call("f", &[a, b]).unwrap())
        .collect();
    for p in PhaseId::ALL {
        for q in PhaseId::ALL {
            let mut g = f.clone();
            attempt(&mut g, p, &target);
            attempt(&mut g, q, &target);
            target.check_function(&g).unwrap();
            for (i, &(a, b)) in [(3, 5), (100, 7), (-4, 12), (0, 0)].iter().enumerate() {
                let mut m2 = Machine::new(&program);
                let got = m2.call_instance(&g, &[a, b]).unwrap();
                assert_eq!(got, expected[i], "pair {}{} broke f({a},{b})", p.letter(), q.letter());
            }
        }
    }
}
