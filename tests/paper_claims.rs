//! End-to-end checks of the paper's headline claims, on a subset of the
//! suite small enough for CI.

use exhaustive_phase_order as epo;

use epo::explore::enumerate::{enumerate, Config};
use epo::explore::interaction::InteractionAnalysis;
use epo::explore::prob::{probabilistic_compile, ProbTables};
use epo::explore::stats::FunctionRow;
use epo::opt::batch::batch_compile;
use epo::opt::{PhaseId, Target};

fn small_suite() -> Vec<(String, epo::rtl::Function)> {
    let mut out = Vec::new();
    for b in epo::benchmarks::all() {
        let p = b.compile().unwrap();
        for f in p.functions {
            if f.inst_count() <= 75 {
                out.push((format!("{}({})", f.name, b.tag), f));
            }
        }
    }
    out
}

/// Claim 1 (Section 4): the actual phase-order space is many orders of
/// magnitude smaller than the attempted space, and can be exhaustively
/// enumerated.
#[test]
fn actual_space_is_tiny_compared_to_attempted() {
    let target = Target::default();
    let mut enumerated = 0;
    for (name, f) in small_suite() {
        let e = enumerate(&f, &target, &Config::default());
        assert!(e.outcome.is_complete(), "{name} did not complete");
        enumerated += 1;
        let depth = e.space.max_active_sequence_length();
        if depth >= 3 {
            let naive = 15f64.powi(depth as i32);
            assert!(
                (e.space.len() as f64) < naive / 100.0,
                "{name}: {} instances vs 15^{depth} attempted orderings",
                e.space.len()
            );
        }
    }
    assert!(enumerated >= 25, "not enough functions exercised");
}

/// Claim 2 (Table 3): different phase orderings change leaf code size by
/// tens of percent for a meaningful share of functions.
#[test]
fn code_size_spread_matches_paper_shape() {
    let target = Target::default();
    let mut spreads = Vec::new();
    for (name, f) in small_suite() {
        let e = enumerate(&f, &target, &Config::default());
        let row = FunctionRow::new(name, &f, &e);
        if let Some(d) = row.code_diff_percent() {
            spreads.push(d);
        }
    }
    let avg = spreads.iter().sum::<f64>() / spreads.len() as f64;
    // Paper: 37.8% average over the whole suite; anything in the tens of
    // percent demonstrates the same phenomenon.
    assert!(avg > 10.0, "average code-size spread {avg:.1}% too small to match the paper");
    assert!(spreads.iter().any(|&d| d > 40.0), "no function shows a large ordering effect");
}

/// Claim 3 (Section 5 / Table 4): instruction selection and CSE are active
/// on unoptimized code; unreachable-code removal never is; register
/// allocation is enabled by instruction selection.
#[test]
fn interaction_structure_matches_paper() {
    let target = Target::default();
    let mut ia = InteractionAnalysis::new();
    for (_, f) in small_suite() {
        let e = enumerate(&f, &target, &Config::default());
        if e.outcome.is_complete() {
            ia.add_space(&e.space);
        }
    }
    assert!(ia.start_probability(PhaseId::InsnSelect).unwrap() > 0.9);
    assert!(ia.start_probability(PhaseId::Cse).unwrap() > 0.8);
    assert_eq!(ia.start_probability(PhaseId::Unreachable), Some(0.0));
    // k's strongest enabler is s (the address-formation dependence).
    let s_to_k = ia.enabling_probability(PhaseId::RegAlloc, PhaseId::InsnSelect).unwrap();
    assert!(s_to_k > 0.5, "s should enable k, got {s_to_k}");
    // k enables s (loads/stores become collapsible moves).
    let k_to_s = ia.enabling_probability(PhaseId::InsnSelect, PhaseId::RegAlloc).unwrap();
    assert!(k_to_s > 0.9, "k should enable s, got {k_to_s}");
    // Phases disable themselves (Table 5's 1.00 diagonal).
    for p in [PhaseId::InsnSelect, PhaseId::Cse, PhaseId::RegAlloc, PhaseId::DeadAssign] {
        let d = ia.disabling_probability(p, p).unwrap();
        assert!(d > 0.95, "{p:?} self-disabling {d}");
    }
    // Evaluation order determination is permanently disabled by any phase
    // that triggers register assignment.
    let c_kills_o = ia.disabling_probability(PhaseId::EvalOrder, PhaseId::Cse);
    if let Some(v) = c_kills_o {
        assert!(v > 0.95, "c should always disable o, got {v}");
    }
}

/// Claim 4 (Section 6 / Table 7): the probabilistic batch compiler
/// attempts far fewer phases than the conventional batch loop at
/// comparable code size.
#[test]
fn probabilistic_compiler_matches_table7_shape() {
    let target = Target::default();
    let mut ia = InteractionAnalysis::new();
    for (_, f) in small_suite() {
        let e = enumerate(&f, &target, &Config::default());
        if e.outcome.is_complete() {
            ia.add_space(&e.space);
        }
    }
    let tables = ProbTables::from_analysis(&ia);

    let (mut old_att, mut prob_att) = (0usize, 0usize);
    let (mut old_size, mut prob_size) = (0usize, 0usize);
    for (_, f) in small_suite() {
        let mut a = f.clone();
        let so = batch_compile(&mut a, &target);
        let mut b = f.clone();
        let sp = probabilistic_compile(&mut b, &target, &tables);
        old_att += so.attempted;
        prob_att += sp.attempted;
        old_size += a.inst_count();
        prob_size += b.inst_count();
    }
    assert!(
        prob_att * 2 < old_att,
        "attempted phases should at least halve: {prob_att} vs {old_att}"
    );
    let size_ratio = prob_size as f64 / old_size as f64;
    assert!(
        (0.95..=1.10).contains(&size_ratio),
        "aggregate size ratio {size_ratio:.3} outside the paper's ballpark"
    );
}

/// Claim 5 (Section 8): exhaustive enumeration finds the minimal code
/// size, and the batch compiler does not always reach it.
#[test]
fn exhaustive_search_finds_optima_batch_misses() {
    let target = Target::default();
    let mut batch_optimal = 0;
    let mut batch_suboptimal = 0;
    for (name, f) in small_suite() {
        let e = enumerate(&f, &target, &Config::default());
        if !e.outcome.is_complete() {
            continue;
        }
        let (best, _) = e.space.leaf_code_size_range().unwrap();
        let mut g = f.clone();
        batch_compile(&mut g, &target);
        assert!(g.inst_count() as u32 >= best, "{name}: batch beat the exhaustive optimum?!");
        if g.inst_count() as u32 == best {
            batch_optimal += 1;
        } else {
            batch_suboptimal += 1;
        }
    }
    assert!(batch_optimal > 0, "batch should reach some optima");
    assert!(batch_suboptimal > 0, "batch reaching every optimum would make the study pointless");
}
