//! Checks of the documented ablation claims (`DESIGN.md` §2): what the
//! configurable design choices actually do to the space.

use exhaustive_phase_order as epo;

use epo::explore::enumerate::{enumerate, Config};
use epo::opt::Target;

fn sample() -> Vec<(String, epo::rtl::Function)> {
    let mut out = Vec::new();
    for b in epo::benchmarks::all() {
        let p = b.compile().unwrap();
        for f in p.functions {
            if (15..=70).contains(&f.inst_count()) {
                out.push((f.name.clone(), f));
            }
        }
    }
    out
}

/// The address-form-robust allocator makes phase orderings more
/// confluent: leaf code-size spreads shrink or stay equal, never grow.
#[test]
fn robust_allocator_reduces_spread() {
    let strict = Target::default();
    let robust = Target { regalloc_requires_direct: false, ..Target::default() };
    let mut strict_sum = 0.0;
    let mut robust_sum = 0.0;
    let mut n = 0;
    for (name, f) in sample() {
        let e1 = enumerate(&f, &strict, &Config::default());
        let e2 = enumerate(&f, &robust, &Config::default());
        if !(e1.outcome.is_complete() && e2.outcome.is_complete()) {
            continue;
        }
        let spread = |e: &epo::explore::Enumeration| {
            e.space
                .leaf_code_size_range()
                .map(|(lo, hi)| (hi - lo) as f64 * 100.0 / lo.max(1) as f64)
                .unwrap_or(0.0)
        };
        strict_sum += spread(&e1);
        robust_sum += spread(&e2);
        n += 1;
        // The robust allocator's *best* leaf is never worse.
        let best = |e: &epo::explore::Enumeration| e.space.leaf_code_size_range().unwrap().0;
        assert!(best(&e2) <= best(&e1), "{name}: robust allocation worsened the optimum");
    }
    assert!(n >= 10, "too few functions compared");
    assert!(
        robust_sum < strict_sum,
        "robust allocator should reduce aggregate spread: {robust_sum:.1} vs {strict_sum:.1}"
    );
}

/// The Figure 2 shortcut saves attempts and never *adds* instances.
#[test]
fn skip_just_applied_saves_attempts() {
    let target = Target::default();
    for (name, f) in sample().into_iter().take(10) {
        let full = enumerate(&f, &target, &Config::default());
        let skip = enumerate(&f, &target, &Config { skip_just_applied: true, ..Config::default() });
        assert!(
            skip.stats.attempted_phases < full.stats.attempted_phases,
            "{name}: shortcut did not save attempts"
        );
        assert!(
            skip.space.len() <= full.space.len(),
            "{name}: shortcut found instances the full search missed?!"
        );
        // In practice the spaces coincide (the paper's claim); tolerate the
        // rare divergence our block normalization can cause, but it must
        // stay small.
        let diff = full.space.len() - skip.space.len();
        assert!(
            diff * 20 <= full.space.len(),
            "{name}: shortcut lost {diff} of {} instances",
            full.space.len()
        );
    }
}

/// Lowering the unroll limit shrinks spaces (fewer code-growing edges).
#[test]
fn unroll_limit_bounds_growth() {
    let no_unroll = Target { unroll_limit: 0, ..Target::default() };
    let default = Target::default();
    let mut shrunk = 0;
    let mut total = 0;
    for (_, f) in sample().into_iter().take(12) {
        let e_no = enumerate(&f, &no_unroll, &Config::default());
        let e_yes = enumerate(&f, &default, &Config::default());
        if !(e_no.outcome.is_complete() && e_yes.outcome.is_complete()) {
            continue;
        }
        total += 1;
        if e_no.space.len() < e_yes.space.len() {
            shrunk += 1;
        }
        // Without unrolling, the largest leaf can only get smaller.
        if let (Some((_, hi_no)), Some((_, hi_yes))) =
            (e_no.space.leaf_code_size_range(), e_yes.space.leaf_code_size_range())
        {
            assert!(hi_no <= hi_yes, "disabling unrolling grew worst-case code");
        }
    }
    assert!(total >= 5);
    assert!(shrunk >= 1, "unrolling never affected any sampled space");
}
