//! Golden canonical fingerprints of the MiBench kernels after the fixed
//! batch sequence.
//!
//! The canonical fingerprint (Section 4.2.1) is the identity of every
//! node in every enumerated space, so *any* change to its value — a new
//! canonicalization rule, a reordered renumbering pass, a CRC tweak, or
//! an unintended change to a phase's output — silently invalidates
//! cross-version comparisons of spaces, golden DAG dumps, and the
//! interaction tables derived from them. These snapshots pin the exact
//! `(inst_count, byte_sum, crc)` triples of one kernel per MiBench
//! category after `batch_compile`, so such a change fails loudly here
//! instead.
//!
//! If a change to the canonicalizer or a phase is *intentional*, rerun
//! the kernels and update the goldens in the same commit — the diff then
//! documents that the instance identities shifted.

use epo::opt::{batch::batch_compile, Target};
use epo::rtl::canon::{fingerprint, Fingerprint};
use exhaustive_phase_order as epo;

/// `(benchmark, function, inst_count, byte_sum, crc)` after batch.
const GOLDENS: [(&str, &str, u32, u64, u32); 6] = [
    ("bitcount", "bit_count", 17, 2779, 1616145577),
    ("dijkstra", "dijkstra", 146, 21339, 2745957976),
    ("fft", "fix_mpy", 3, 822, 1858597526),
    ("jpeg", "ycc_y", 16, 3679, 411609013),
    ("sha", "rotl", 6, 1157, 2820536578),
    ("stringsearch", "lower", 7, 2177, 2426393892),
];

#[test]
fn batch_compiled_kernels_match_golden_fingerprints() {
    let target = Target::default();
    let mut failures = Vec::new();
    for (bench_name, func, inst_count, byte_sum, crc) in GOLDENS {
        let bench = epo::benchmarks::all().into_iter().find(|b| b.name == bench_name).unwrap();
        let program = bench.compile().unwrap();
        let mut f = program.function(func).unwrap().clone();
        batch_compile(&mut f, &target);
        let got = fingerprint(&f);
        let want = Fingerprint { inst_count, byte_sum, crc };
        if got != want {
            failures.push(format!(
                "{bench_name}::{func}: golden {want:?}, got {got:?}\n\
                 (intentional canonicalizer/phase change? update GOLDENS)"
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// The golden identities are stable across repeated compilation — the
/// batch pipeline and canonicalizer are deterministic end to end.
#[test]
fn golden_fingerprints_are_reproducible() {
    let target = Target::default();
    for (bench_name, func, ..) in GOLDENS {
        let bench = epo::benchmarks::all().into_iter().find(|b| b.name == bench_name).unwrap();
        let fps: Vec<Fingerprint> = (0..2)
            .map(|_| {
                let program = bench.compile().unwrap();
                let mut f = program.function(func).unwrap().clone();
                batch_compile(&mut f, &target);
                fingerprint(&f)
            })
            .collect();
        assert_eq!(fps[0], fps[1], "{bench_name}::{func} fingerprint not reproducible");
    }
}
