//! Smoke-level differential verification of enumerated phase-order
//! spaces: the oracle executes **every** distinct instance of real
//! MiBench kernels and checks the paper's two load-bearing assumptions —
//! all orderings preserve behaviour, and fingerprint-merged paths are
//! genuinely the same function (Sections 2 and 4.2.1).

mod common;

use common::quick_workloads;
use epo::explore::enumerate::Config;
use epo::explore::oracle::{self, OracleConfig};
use epo::opt::Target;
use exhaustive_phase_order as epo;

fn smoke_configs() -> (Config, OracleConfig) {
    let enum_config = Config { max_nodes: 5_000, ..Config::default() };
    let oracle_config = OracleConfig { battery: 3, ..OracleConfig::default() };
    (enum_config, oracle_config)
}

/// The acceptance gate: at least four seed kernels, every distinct
/// instance executed, zero findings, and a dynamic-count-optimal leaf
/// reported per function.
#[test]
fn oracle_verifies_seed_kernels() {
    let kernels = [
        ("bitcount", "bit_count"),
        ("bitcount", "bit_shifter"),
        ("fft", "fix_mpy"),
        ("jpeg", "range_limit"),
        ("sha", "rotl"),
    ];
    let (enum_config, oracle_config) = smoke_configs();
    let target = Target::default();
    for (bench_name, func) in kernels {
        let bench = epo::benchmarks::all().into_iter().find(|b| b.name == bench_name).unwrap();
        let program = bench.compile().unwrap();
        let f = program.function(func).unwrap();
        let (e, report) =
            oracle::verify_function(&program, f, &target, &enum_config, &oracle_config);
        assert!(e.outcome.is_complete(), "{bench_name}::{func}: budget too small for smoke");
        assert!(report.is_clean(), "{bench_name}::{func}: oracle findings: {:#?}", report.findings);
        // Every distinct instance of the space was executed.
        assert_eq!(report.instances, e.space.len());
        assert_eq!(report.leaves.len(), e.space.leaf_count());
        assert!(!report.inputs.is_empty(), "{bench_name}::{func}: empty battery");
        // The optimal ordering is reported, and optimizing never lost to
        // the naive baseline on the battery.
        let best = report.best_leaf().unwrap_or_else(|| panic!("{bench_name}::{func}: no leaves"));
        assert!(
            best.dynamic <= report.baseline_dynamic,
            "{bench_name}::{func}: best leaf {} dynamic {} worse than baseline {}",
            best.node,
            best.dynamic,
            report.baseline_dynamic
        );
    }
}

/// The oracle's verdict — findings, leaf dynamics, and best-leaf choice —
/// is bit-identical for any worker count (satellite of the PR 1 claim
/// that parallelism never changes results).
#[test]
fn oracle_parallel_matches_serial() {
    let (bench_name, func, _) = quick_workloads().swap_remove(0);
    let bench = epo::benchmarks::all().into_iter().find(|b| b.name == bench_name).unwrap();
    let program = bench.compile().unwrap();
    let f = program.function(func).unwrap();
    let target = Target::default();
    let (enum_config, oracle_config) = smoke_configs();
    let e = epo::explore::enumerate(f, &target, &enum_config);

    let serial = oracle::verify(
        &program,
        f,
        &e,
        &target,
        &OracleConfig { jobs: 1, ..oracle_config.clone() },
    );
    assert!(serial.is_clean(), "findings: {:#?}", serial.findings);
    for jobs in [2usize, 3, 0] {
        let par = oracle::verify(
            &program,
            f,
            &e,
            &target,
            &OracleConfig { jobs, ..oracle_config.clone() },
        );
        assert_eq!(serial, par, "oracle verdict diverged at jobs={jobs}");
    }
}
