//! Pipeline fuzzing: randomly generated MiniC programs are compiled,
//! optimized under random phase orders, and executed — and every stage
//! must agree with a reference evaluator written directly in Rust.
//!
//! This exercises the lexer, parser, semantic checker, naive code
//! generator, all fifteen optimization phases, register assignment, block
//! normalization, the canonicalizer, and the simulator against each
//! other, on programs none of them have seen before.
//!
//! Formerly proptest properties; the hermetic build policy (no registry
//! crates — see `DESIGN.md`) replaced the strategies with the in-tree
//! seeded generator `phase_order::rng::Rng`. Every case prints enough
//! context (seed + generated source) on failure to reproduce it.

use epo::explore::rng::Rng;
use epo::opt::{attempt, PhaseId, Target};
use epo::sim::Machine;
use exhaustive_phase_order as epo;

/// A tiny expression AST we can both render as MiniC and evaluate.
#[derive(Clone, Debug)]
enum E {
    /// One of the three parameters.
    Param(u8),
    /// One of the three mutable locals.
    Local(u8),
    Const(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    /// Shift by a constant in 0..31 (avoids target-undefined shifts).
    Shl(Box<E>, u8),
    Shr(Box<E>, u8),
    /// Division by a non-zero constant (avoids traps).
    Div(Box<E>, i32),
    Neg(Box<E>),
    Not(Box<E>),
    /// Comparison producing 0/1.
    Lt(Box<E>, Box<E>),
}

/// Statements: assignments to locals, if/else, and a bounded for loop.
#[derive(Clone, Debug)]
enum S {
    Assign(u8, E),
    If(E, Vec<S>, Vec<S>),
    /// `for (i = 0; i < n; i++) body` with small constant n; the loop
    /// variable is a dedicated fourth local the body cannot write.
    For(u8, Vec<S>),
}

const PARAMS: [&str; 3] = ["a", "b", "c"];
const LOCALS: [&str; 3] = ["x", "y", "z"];

fn render_e(e: &E, out: &mut String) {
    match e {
        E::Param(i) => out.push_str(PARAMS[*i as usize % 3]),
        E::Local(i) => out.push_str(LOCALS[*i as usize % 3]),
        E::Const(c) => out.push_str(&c.to_string()),
        E::Add(a, b) => bin(out, a, "+", b),
        E::Sub(a, b) => bin(out, a, "-", b),
        E::Mul(a, b) => bin(out, a, "*", b),
        E::And(a, b) => bin(out, a, "&", b),
        E::Or(a, b) => bin(out, a, "|", b),
        E::Xor(a, b) => bin(out, a, "^", b),
        E::Shl(a, k) => {
            out.push('(');
            render_e(a, out);
            out.push_str(&format!(" << {k})"));
        }
        E::Shr(a, k) => {
            out.push('(');
            render_e(a, out);
            out.push_str(&format!(" >> {k})"));
        }
        E::Div(a, c) => {
            out.push('(');
            render_e(a, out);
            out.push_str(&format!(" / {c})"));
        }
        E::Neg(a) => {
            // The space avoids lexing `(-` + `-1` as the `--` operator.
            out.push_str("(- ");
            render_e(a, out);
            out.push(')');
        }
        E::Not(a) => {
            out.push_str("(~");
            render_e(a, out);
            out.push(')');
        }
        E::Lt(a, b) => bin(out, a, "<", b),
    }
}

fn bin(out: &mut String, a: &E, op: &str, b: &E) {
    out.push('(');
    render_e(a, out);
    out.push(' ');
    out.push_str(op);
    out.push(' ');
    render_e(b, out);
    out.push(')');
}

fn render_s(s: &S, out: &mut String, indent: usize, loop_depth: usize) {
    let pad = "    ".repeat(indent);
    match s {
        S::Assign(l, e) => {
            out.push_str(&pad);
            out.push_str(LOCALS[*l as usize % 3]);
            out.push_str(" = ");
            render_e(e, out);
            out.push_str(";\n");
        }
        S::If(c, t, f) => {
            out.push_str(&pad);
            out.push_str("if (");
            render_e(c, out);
            out.push_str(" != 0) {\n");
            for st in t {
                render_s(st, out, indent + 1, loop_depth);
            }
            out.push_str(&pad);
            if f.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for st in f {
                    render_s(st, out, indent + 1, loop_depth);
                }
                out.push_str(&pad);
                out.push_str("}\n");
            }
        }
        S::For(n, body) => {
            let iv = format!("i{loop_depth}");
            out.push_str(&pad);
            out.push_str(&format!("for ({iv} = 0; {iv} < {n}; {iv}++) {{\n"));
            for st in body {
                render_s(st, out, indent + 1, loop_depth + 1);
            }
            out.push_str(&pad);
            out.push_str("}\n");
        }
    }
}

fn render_program(body: &[S]) -> String {
    let mut out = String::from("int f(int a, int b, int c) {\n");
    out.push_str("    int x = 0;\n    int y = 0;\n    int z = 0;\n");
    out.push_str("    int i0;\n    int i1;\n");
    for s in body {
        render_s(s, &mut out, 1, 0);
    }
    out.push_str("    return x ^ y ^ z;\n}\n");
    out
}

/// Reference evaluation, mirroring MiniC/RTL semantics exactly
/// (wrapping 32-bit arithmetic, arithmetic right shift, C-style
/// truncating division).
struct Eval {
    params: [i32; 3],
    locals: [i32; 3],
}

impl Eval {
    fn expr(&self, e: &E) -> i32 {
        match e {
            E::Param(i) => self.params[*i as usize % 3],
            E::Local(i) => self.locals[*i as usize % 3],
            E::Const(c) => *c,
            E::Add(a, b) => self.expr(a).wrapping_add(self.expr(b)),
            E::Sub(a, b) => self.expr(a).wrapping_sub(self.expr(b)),
            E::Mul(a, b) => self.expr(a).wrapping_mul(self.expr(b)),
            E::And(a, b) => self.expr(a) & self.expr(b),
            E::Or(a, b) => self.expr(a) | self.expr(b),
            E::Xor(a, b) => self.expr(a) ^ self.expr(b),
            E::Shl(a, k) => self.expr(a).wrapping_shl(*k as u32),
            E::Shr(a, k) => self.expr(a).wrapping_shr(*k as u32),
            E::Div(a, c) => {
                let x = self.expr(a);
                if x == i32::MIN && *c == -1 {
                    // Overflow case is excluded by the generator (positive
                    // divisors only), but keep the evaluator total.
                    x
                } else {
                    x.wrapping_div(*c)
                }
            }
            E::Neg(a) => self.expr(a).wrapping_neg(),
            E::Not(a) => !self.expr(a),
            E::Lt(a, b) => (self.expr(a) < self.expr(b)) as i32,
        }
    }

    fn stmts(&mut self, body: &[S]) {
        for s in body {
            match s {
                S::Assign(l, e) => self.locals[*l as usize % 3] = self.expr(e),
                S::If(c, t, f) => {
                    if self.expr(c) != 0 {
                        self.stmts(t);
                    } else {
                        self.stmts(f);
                    }
                }
                S::For(n, inner) => {
                    for _ in 0..*n {
                        self.stmts(inner);
                    }
                }
            }
        }
    }

    fn run(params: [i32; 3], body: &[S]) -> i32 {
        let mut ev = Eval { params, locals: [0; 3] };
        ev.stmts(body);
        ev.locals[0] ^ ev.locals[1] ^ ev.locals[2]
    }
}

// ---- Generators (seeded, in-tree; formerly proptest strategies) -------

const WIDE_CONSTS: [i32; 3] = [0x12345678, -77777, 0x00FF00FF];

fn gen_leaf(rng: &mut Rng) -> E {
    match rng.gen_range(0..4) {
        0 => E::Param(rng.gen_range(0..3) as u8),
        1 => E::Local(rng.gen_range(0..3) as u8),
        2 => E::Const(rng.gen_range_i32(-200..200)),
        // Some wide constants to exercise bytewise materialization.
        _ => E::Const(WIDE_CONSTS[rng.gen_range(0..WIDE_CONSTS.len())]),
    }
}

fn gen_expr(rng: &mut Rng, depth: u32) -> E {
    // A quarter of interior draws bottom out early, mirroring the old
    // strategy's leaf bias; depth caps recursion at 3 as before.
    if depth == 0 || rng.gen_range(0..4) == 0 {
        return gen_leaf(rng);
    }
    let mut sub = |rng: &mut Rng| Box::new(gen_expr(rng, depth - 1));
    match rng.gen_range(0..12) {
        0 => E::Add(sub(rng), sub(rng)),
        1 => E::Sub(sub(rng), sub(rng)),
        2 => E::Mul(sub(rng), sub(rng)),
        3 => E::And(sub(rng), sub(rng)),
        4 => E::Or(sub(rng), sub(rng)),
        5 => E::Xor(sub(rng), sub(rng)),
        6 => E::Shl(sub(rng), rng.gen_range(0..31) as u8),
        7 => E::Shr(sub(rng), rng.gen_range(0..31) as u8),
        8 => E::Div(sub(rng), rng.gen_range_i32(1..50)),
        9 => E::Neg(sub(rng)),
        10 => E::Not(sub(rng)),
        _ => E::Lt(sub(rng), sub(rng)),
    }
}

fn gen_stmt(rng: &mut Rng, depth: u32) -> S {
    // Weights 3:1:1 assign/if/for, as in the old strategy.
    let pick = if depth == 0 { 0 } else { rng.gen_range(0..5) };
    match pick {
        0..=2 => S::Assign(rng.gen_range(0..3) as u8, gen_expr(rng, 3)),
        3 => {
            let c = gen_expr(rng, 3);
            let t = gen_block(rng, depth - 1, 1, 3);
            let f = gen_block(rng, depth - 1, 0, 3);
            S::If(c, t, f)
        }
        _ => S::For(rng.gen_range(1..6) as u8, gen_block(rng, depth - 1, 1, 3)),
    }
}

fn gen_block(rng: &mut Rng, depth: u32, min: usize, max: usize) -> Vec<S> {
    (0..rng.gen_range(min..max)).map(|_| gen_stmt(rng, depth)).collect()
}

fn gen_body(rng: &mut Rng) -> Vec<S> {
    gen_block(rng, 2, 1, 6)
}

fn gen_params(rng: &mut Rng) -> [i32; 3] {
    [rng.gen_range_i32(-1000..1000), rng.gen_range_i32(-1000..1000), rng.gen_range_i32(-1000..1000)]
}

// ---- Properties -------------------------------------------------------

/// Naive compilation + simulation matches the reference evaluator.
#[test]
fn naive_codegen_matches_reference() {
    for seed in 0..48u64 {
        let mut rng = Rng::seed_from_u64(0x5EED_0001 ^ seed);
        let body = gen_body(&mut rng);
        let params = gen_params(&mut rng);
        let src = render_program(&body);
        let program = epo::frontend::compile(&src)
            .unwrap_or_else(|e| panic!("generated source failed to compile: {e}\n{src}"));
        // Every generated instruction must be legal machine code.
        let target = Target::default();
        target.check_function(&program.functions[0]).unwrap();

        let expected = Eval::run(params, &body);
        let mut m = Machine::new(&program);
        let got = m.call("f", &params).unwrap();
        assert_eq!(got, expected, "seed {seed}, source:\n{src}");
    }
}

/// Random phase orders preserve the reference semantics on random
/// programs (the strongest soundness property in the suite).
#[test]
fn random_phase_orders_preserve_random_programs() {
    for seed in 0..48u64 {
        let mut rng = Rng::seed_from_u64(0x5EED_0002 ^ seed);
        let body = gen_body(&mut rng);
        let params = gen_params(&mut rng);
        let seq: Vec<usize> =
            (0..rng.gen_range(1..10)).map(|_| rng.gen_range(0..PhaseId::COUNT)).collect();
        let src = render_program(&body);
        let program = epo::frontend::compile(&src).unwrap();
        let target = Target::default();
        let mut f = program.functions[0].clone();
        for &s in &seq {
            attempt(&mut f, PhaseId::from_index(s), &target);
        }
        target.check_function(&f).unwrap();

        let expected = Eval::run(params, &body);
        let mut m = Machine::new(&program);
        let got = m.call_instance(&f, &params).unwrap();
        assert_eq!(got, expected, "seed {seed}, sequence {seq:?} broke:\n{src}");
    }
}

/// Canonical fingerprints are invariant under hard-register and label
/// renaming (the Figure 5 property), and canonicalization never
/// confuses a function with a differently-optimized sibling.
#[test]
fn canonicalization_invariance() {
    for seed in 0..48u64 {
        let mut rng = Rng::seed_from_u64(0x5EED_0003 ^ seed);
        let body = gen_body(&mut rng);
        let seq: Vec<usize> =
            (0..rng.gen_range(0..6)).map(|_| rng.gen_range(0..PhaseId::COUNT)).collect();
        let rot = rng.gen_range(1..7) as u16;
        let src = render_program(&body);
        let program = epo::frontend::compile(&src).unwrap();
        let target = Target::default();
        let mut f = program.functions[0].clone();
        // Force register assignment so hard registers exist.
        attempt(&mut f, PhaseId::InsnSelect, &target);
        for &s in &seq {
            attempt(&mut f, PhaseId::from_index(s), &target);
        }
        let fp = epo::rtl::canon::fingerprint(&f);

        // Bijectively rotate hard register indices and shift labels.
        let mut g = f.clone();
        let max_reg = g.all_regs().iter().map(|r| r.index).max().unwrap_or(0) + 1;
        let remap = |r: epo::rtl::Reg| {
            if r.is_hard() {
                epo::rtl::Reg::hard((r.index + rot) % max_reg.max(rot + 1))
            } else {
                r
            }
        };
        for b in &mut g.blocks {
            for inst in &mut b.insts {
                if let epo::rtl::Inst::Assign { dst, .. } = inst {
                    *dst = remap(*dst);
                }
                if let epo::rtl::Inst::Call { dst: Some(d), .. } = inst {
                    *d = remap(*d);
                }
                inst.visit_exprs_mut(&mut |e| {
                    e.visit_mut(&mut |sub| {
                        if let epo::rtl::Expr::Reg(r) = sub {
                            *r = remap(*r);
                        }
                    });
                });
            }
        }
        for p in &mut g.params {
            *p = remap(*p);
        }
        // Renaming registers must not change identity...
        assert_eq!(epo::rtl::canon::fingerprint(&g), fp, "seed {seed}, renamed:\n{g}");
        // ...but actually changing the code must.
        if let Some(first_assign) =
            f.blocks.iter_mut().flat_map(|b| b.insts.iter_mut()).find_map(|i| match i {
                epo::rtl::Inst::Assign { src, .. } => Some(src),
                _ => None,
            })
        {
            *first_assign = epo::rtl::Expr::Const(123454321);
            assert_ne!(epo::rtl::canon::fingerprint(&f), fp, "seed {seed}");
        }
    }
}
