//! Pipeline fuzzing: randomly generated MiniC programs are compiled,
//! optimized under random phase orders, and executed — and every stage
//! must agree with a reference interpreter written directly in Rust.
//!
//! The generator is the library statement-level fuzzer
//! [`epo::frontend::fuzz`]: while/if nesting, global scalars, a global
//! array, helper-function calls, compound assignments — the same shapes
//! the MiBench kernels are built from. Its reference interpreter mirrors
//! MiniC/RTL semantics exactly (wrapping 32-bit arithmetic, arithmetic
//! and logical shifts, C-style truncating division), so disagreement at
//! any point pins the defect to the compiler side.
//!
//! This exercises the lexer, parser, semantic checker, naive code
//! generator, all fifteen optimization phases, register assignment, block
//! normalization, the canonicalizer, and the simulator against each
//! other, on programs none of them have seen before. Every case prints
//! enough context (seed + generated source) on failure to reproduce it.

mod common;

use common::{apply_sequence, gen_seq};
use epo::explore::rng::Rng;
use epo::frontend::fuzz::{FuzzProgram, ENTRY};
use epo::opt::{attempt, PhaseId, Target};
use epo::sim::Machine;
use exhaustive_phase_order as epo;

/// Compiles one fuzz case, panicking with the source on failure.
fn compile_case(p: &FuzzProgram, seed: u64) -> epo::rtl::Program {
    p.compile().unwrap_or_else(|e| {
        panic!("seed {seed}: generated source failed to compile: {e}\n{}", p.source)
    })
}

/// Naive compilation + simulation matches the reference interpreter.
#[test]
fn naive_codegen_matches_reference() {
    for seed in 0..60u64 {
        let mut rng = Rng::seed_from_u64(0x5EED_0001 ^ seed);
        let fp = FuzzProgram::generate(&mut rng);
        let program = compile_case(&fp, seed);
        // Every generated instruction must be legal machine code.
        let target = Target::default();
        for f in &program.functions {
            target.check_function(f).unwrap();
        }
        for _ in 0..2 {
            let args = FuzzProgram::gen_args(&mut rng);
            let expected = fp.reference(args);
            let mut m = Machine::new(&program);
            let got = m.call(ENTRY, &args).unwrap();
            assert_eq!(got, expected, "seed {seed}, args {args:?}, source:\n{}", fp.source);
        }
    }
}

/// Random phase orders preserve the reference semantics on random
/// statement-level programs — the strongest soundness property in the
/// suite, and the acceptance gate for the fuzzer: 200 seeded programs
/// through compile → optimize → simulate against the interpreter.
#[test]
fn random_phase_orders_preserve_random_programs() {
    for seed in 0..200u64 {
        let mut rng = Rng::seed_from_u64(0x5EED_0002 ^ seed);
        let fp = FuzzProgram::generate(&mut rng);
        let seq = gen_seq(&mut rng, 1..10);
        let args = FuzzProgram::gen_args(&mut rng);
        let program = compile_case(&fp, seed);
        let target = Target::default();
        let (optimized, _) = apply_sequence(program.function(ENTRY).unwrap(), &seq, &target);
        target.check_function(&optimized).unwrap();

        let expected = fp.reference(args);
        let mut m = Machine::new(&program);
        let got = m.call_instance(&optimized, &args).unwrap();
        assert_eq!(
            got, expected,
            "seed {seed}, sequence {seq:?}, args {args:?} broke:\n{}",
            fp.source
        );
    }
}

/// Canonical fingerprints are invariant under hard-register and label
/// renaming (the Figure 5 property), and canonicalization never
/// confuses a function with a differently-optimized sibling.
#[test]
fn canonicalization_invariance() {
    for seed in 0..48u64 {
        let mut rng = Rng::seed_from_u64(0x5EED_0003 ^ seed);
        let fuzz = FuzzProgram::generate(&mut rng);
        let seq: Vec<usize> =
            (0..rng.gen_range(0..6)).map(|_| rng.gen_range(0..PhaseId::COUNT)).collect();
        let rot = rng.gen_range(1..7) as u16;
        let program = compile_case(&fuzz, seed);
        let target = Target::default();
        let mut f = program.function(ENTRY).unwrap().clone();
        // Force register assignment so hard registers exist.
        attempt(&mut f, PhaseId::InsnSelect, &target);
        for &s in &seq {
            attempt(&mut f, PhaseId::from_index(s), &target);
        }
        let fp = epo::rtl::canon::fingerprint(&f);

        // Bijectively rotate hard register indices and shift labels.
        let mut g = f.clone();
        let max_reg = g.all_regs().iter().map(|r| r.index).max().unwrap_or(0) + 1;
        let remap = |r: epo::rtl::Reg| {
            if r.is_hard() {
                epo::rtl::Reg::hard((r.index + rot) % max_reg.max(rot + 1))
            } else {
                r
            }
        };
        for b in &mut g.blocks {
            for inst in &mut b.insts {
                if let epo::rtl::Inst::Assign { dst, .. } = inst {
                    *dst = remap(*dst);
                }
                if let epo::rtl::Inst::Call { dst: Some(d), .. } = inst {
                    *d = remap(*d);
                }
                inst.visit_exprs_mut(&mut |e| {
                    e.visit_mut(&mut |sub| {
                        if let epo::rtl::Expr::Reg(r) = sub {
                            *r = remap(*r);
                        }
                    });
                });
            }
        }
        for p in &mut g.params {
            *p = remap(*p);
        }
        // Renaming registers must not change identity...
        assert_eq!(epo::rtl::canon::fingerprint(&g), fp, "seed {seed}, renamed:\n{g}");
        // ...but actually changing the code must.
        if let Some(first_assign) =
            f.blocks.iter_mut().flat_map(|b| b.insts.iter_mut()).find_map(|i| match i {
                epo::rtl::Inst::Assign { src, .. } => Some(src),
                _ => None,
            })
        {
            *first_assign = epo::rtl::Expr::Const(123454321);
            assert_ne!(epo::rtl::canon::fingerprint(&f), fp, "seed {seed}");
        }
    }
}
