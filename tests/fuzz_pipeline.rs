//! Pipeline fuzzing: randomly generated MiniC programs are compiled,
//! optimized under random phase orders, and executed — and every stage
//! must agree with a reference evaluator written directly in Rust.
//!
//! This exercises the lexer, parser, semantic checker, naive code
//! generator, all fifteen optimization phases, register assignment, block
//! normalization, the canonicalizer, and the simulator against each
//! other, on programs none of them have seen before.

use proptest::prelude::*;

use exhaustive_phase_order as epo;
use epo::opt::{attempt, PhaseId, Target};
use epo::sim::Machine;

/// A tiny expression AST we can both render as MiniC and evaluate.
#[derive(Clone, Debug)]
enum E {
    /// One of the three parameters.
    Param(u8),
    /// One of the three mutable locals.
    Local(u8),
    Const(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    /// Shift by a constant in 0..31 (avoids target-undefined shifts).
    Shl(Box<E>, u8),
    Shr(Box<E>, u8),
    /// Division by a non-zero constant (avoids traps).
    Div(Box<E>, i32),
    Neg(Box<E>),
    Not(Box<E>),
    /// Comparison producing 0/1.
    Lt(Box<E>, Box<E>),
}

/// Statements: assignments to locals, if/else, and a bounded for loop.
#[derive(Clone, Debug)]
enum S {
    Assign(u8, E),
    If(E, Vec<S>, Vec<S>),
    /// `for (i = 0; i < n; i++) body` with small constant n; the loop
    /// variable is a dedicated fourth local the body cannot write.
    For(u8, Vec<S>),
}

const PARAMS: [&str; 3] = ["a", "b", "c"];
const LOCALS: [&str; 3] = ["x", "y", "z"];

fn render_e(e: &E, out: &mut String) {
    match e {
        E::Param(i) => out.push_str(PARAMS[*i as usize % 3]),
        E::Local(i) => out.push_str(LOCALS[*i as usize % 3]),
        E::Const(c) => out.push_str(&c.to_string()),
        E::Add(a, b) => bin(out, a, "+", b),
        E::Sub(a, b) => bin(out, a, "-", b),
        E::Mul(a, b) => bin(out, a, "*", b),
        E::And(a, b) => bin(out, a, "&", b),
        E::Or(a, b) => bin(out, a, "|", b),
        E::Xor(a, b) => bin(out, a, "^", b),
        E::Shl(a, k) => {
            out.push('(');
            render_e(a, out);
            out.push_str(&format!(" << {k})"));
        }
        E::Shr(a, k) => {
            out.push('(');
            render_e(a, out);
            out.push_str(&format!(" >> {k})"));
        }
        E::Div(a, c) => {
            out.push('(');
            render_e(a, out);
            out.push_str(&format!(" / {c})"));
        }
        E::Neg(a) => {
            // The space avoids lexing `(-` + `-1` as the `--` operator.
            out.push_str("(- ");
            render_e(a, out);
            out.push(')');
        }
        E::Not(a) => {
            out.push_str("(~");
            render_e(a, out);
            out.push(')');
        }
        E::Lt(a, b) => bin(out, a, "<", b),
    }
}

fn bin(out: &mut String, a: &E, op: &str, b: &E) {
    out.push('(');
    render_e(a, out);
    out.push(' ');
    out.push_str(op);
    out.push(' ');
    render_e(b, out);
    out.push(')');
}

fn render_s(s: &S, out: &mut String, indent: usize, loop_depth: usize) {
    let pad = "    ".repeat(indent);
    match s {
        S::Assign(l, e) => {
            out.push_str(&pad);
            out.push_str(LOCALS[*l as usize % 3]);
            out.push_str(" = ");
            render_e(e, out);
            out.push_str(";\n");
        }
        S::If(c, t, f) => {
            out.push_str(&pad);
            out.push_str("if (");
            render_e(c, out);
            out.push_str(" != 0) {\n");
            for st in t {
                render_s(st, out, indent + 1, loop_depth);
            }
            out.push_str(&pad);
            if f.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for st in f {
                    render_s(st, out, indent + 1, loop_depth);
                }
                out.push_str(&pad);
                out.push_str("}\n");
            }
        }
        S::For(n, body) => {
            let iv = format!("i{loop_depth}");
            out.push_str(&pad);
            out.push_str(&format!("for ({iv} = 0; {iv} < {n}; {iv}++) {{\n"));
            for st in body {
                render_s(st, out, indent + 1, loop_depth + 1);
            }
            out.push_str(&pad);
            out.push_str("}\n");
        }
    }
}

fn render_program(body: &[S]) -> String {
    let mut out = String::from("int f(int a, int b, int c) {\n");
    out.push_str("    int x = 0;\n    int y = 0;\n    int z = 0;\n");
    out.push_str("    int i0;\n    int i1;\n");
    for s in body {
        render_s(s, &mut out, 1, 0);
    }
    out.push_str("    return x ^ y ^ z;\n}\n");
    out
}

/// Reference evaluation, mirroring MiniC/RTL semantics exactly
/// (wrapping 32-bit arithmetic, arithmetic right shift, C-style
/// truncating division).
struct Eval {
    params: [i32; 3],
    locals: [i32; 3],
}

impl Eval {
    fn expr(&self, e: &E) -> i32 {
        match e {
            E::Param(i) => self.params[*i as usize % 3],
            E::Local(i) => self.locals[*i as usize % 3],
            E::Const(c) => *c,
            E::Add(a, b) => self.expr(a).wrapping_add(self.expr(b)),
            E::Sub(a, b) => self.expr(a).wrapping_sub(self.expr(b)),
            E::Mul(a, b) => self.expr(a).wrapping_mul(self.expr(b)),
            E::And(a, b) => self.expr(a) & self.expr(b),
            E::Or(a, b) => self.expr(a) | self.expr(b),
            E::Xor(a, b) => self.expr(a) ^ self.expr(b),
            E::Shl(a, k) => self.expr(a).wrapping_shl(*k as u32),
            E::Shr(a, k) => self.expr(a).wrapping_shr(*k as u32),
            E::Div(a, c) => {
                let x = self.expr(a);
                if x == i32::MIN && *c == -1 {
                    // Overflow case is excluded by the generator (positive
                    // divisors only), but keep the evaluator total.
                    x
                } else {
                    x.wrapping_div(*c)
                }
            }
            E::Neg(a) => self.expr(a).wrapping_neg(),
            E::Not(a) => !self.expr(a),
            E::Lt(a, b) => (self.expr(a) < self.expr(b)) as i32,
        }
    }

    fn stmts(&mut self, body: &[S]) {
        for s in body {
            match s {
                S::Assign(l, e) => self.locals[*l as usize % 3] = self.expr(e),
                S::If(c, t, f) => {
                    if self.expr(c) != 0 {
                        self.stmts(t);
                    } else {
                        self.stmts(f);
                    }
                }
                S::For(n, inner) => {
                    for _ in 0..*n {
                        self.stmts(inner);
                    }
                }
            }
        }
    }

    fn run(params: [i32; 3], body: &[S]) -> i32 {
        let mut ev = Eval { params, locals: [0; 3] };
        ev.stmts(body);
        ev.locals[0] ^ ev.locals[1] ^ ev.locals[2]
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (0u8..3).prop_map(E::Param),
        (0u8..3).prop_map(E::Local),
        (-200i32..200).prop_map(E::Const),
        // Some wide constants to exercise bytewise materialization.
        prop_oneof![Just(0x12345678), Just(-77777), Just(0x00FF00FF)].prop_map(E::Const),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), 0u8..31).prop_map(|(a, k)| E::Shl(Box::new(a), k)),
            (inner.clone(), 0u8..31).prop_map(|(a, k)| E::Shr(Box::new(a), k)),
            (inner.clone(), 1i32..50).prop_map(|(a, c)| E::Div(Box::new(a), c)),
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
            inner.clone().prop_map(|a| E::Not(Box::new(a))),
            (inner.clone(), inner).prop_map(|(a, b)| E::Lt(Box::new(a), Box::new(b))),
        ]
    })
}

fn arb_stmt(depth: u32) -> BoxedStrategy<S> {
    if depth == 0 {
        (0u8..3, arb_expr()).prop_map(|(l, e)| S::Assign(l, e)).boxed()
    } else {
        prop_oneof![
            3 => (0u8..3, arb_expr()).prop_map(|(l, e)| S::Assign(l, e)),
            1 => (
                arb_expr(),
                proptest::collection::vec(arb_stmt(depth - 1), 1..3),
                proptest::collection::vec(arb_stmt(depth - 1), 0..3),
            )
                .prop_map(|(c, t, f)| S::If(c, t, f)),
            1 => (
                1u8..6,
                proptest::collection::vec(arb_stmt(depth - 1), 1..3),
            )
                .prop_map(|(n, b)| S::For(n, b)),
        ]
        .boxed()
    }
}

fn arb_body() -> impl Strategy<Value = Vec<S>> {
    proptest::collection::vec(arb_stmt(2), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    /// Naive compilation + simulation matches the reference evaluator.
    #[test]
    fn naive_codegen_matches_reference(
        body in arb_body(),
        params in proptest::array::uniform3(-1000i32..1000),
    ) {
        let src = render_program(&body);
        let program = epo::frontend::compile(&src)
            .unwrap_or_else(|e| panic!("generated source failed to compile: {e}\n{src}"));
        // Every generated instruction must be legal machine code.
        let target = Target::default();
        target.check_function(&program.functions[0]).unwrap();

        let expected = Eval::run(params, &body);
        let mut m = Machine::new(&program);
        let got = m.call("f", &params).unwrap();
        prop_assert_eq!(got, expected, "source:\n{}", src);
    }

    /// Random phase orders preserve the reference semantics on random
    /// programs (the strongest soundness property in the suite).
    #[test]
    fn random_phase_orders_preserve_random_programs(
        body in arb_body(),
        params in proptest::array::uniform3(-1000i32..1000),
        seq in proptest::collection::vec(0u8..15, 1..10),
    ) {
        let src = render_program(&body);
        let program = epo::frontend::compile(&src).unwrap();
        let target = Target::default();
        let mut f = program.functions[0].clone();
        for s in &seq {
            attempt(&mut f, PhaseId::from_index(*s as usize % PhaseId::COUNT), &target);
        }
        target.check_function(&f).unwrap();

        let expected = Eval::run(params, &body);
        let mut m = Machine::new(&program);
        let got = m.call_instance(&f, &params).unwrap();
        prop_assert_eq!(
            got, expected,
            "sequence {:?} broke:\n{}", seq, src
        );
    }

    /// Canonical fingerprints are invariant under hard-register and label
    /// renaming (the Figure 5 property), and canonicalization never
    /// confuses a function with a differently-optimized sibling.
    #[test]
    fn canonicalization_invariance(
        body in arb_body(),
        seq in proptest::collection::vec(0u8..15, 0..6),
        rot in 1u16..7,
    ) {
        let src = render_program(&body);
        let program = epo::frontend::compile(&src).unwrap();
        let target = Target::default();
        let mut f = program.functions[0].clone();
        // Force register assignment so hard registers exist.
        attempt(&mut f, PhaseId::InsnSelect, &target);
        for s in &seq {
            attempt(&mut f, PhaseId::from_index(*s as usize % PhaseId::COUNT), &target);
        }
        let fp = epo::rtl::canon::fingerprint(&f);

        // Bijectively rotate hard register indices and shift labels.
        let mut g = f.clone();
        let max_reg = g.all_regs().iter().map(|r| r.index).max().unwrap_or(0) + 1;
        let remap = |r: epo::rtl::Reg| {
            if r.is_hard() {
                epo::rtl::Reg::hard((r.index + rot) % max_reg.max(rot + 1))
            } else {
                r
            }
        };
        for b in &mut g.blocks {
            for inst in &mut b.insts {
                if let epo::rtl::Inst::Assign { dst, .. } = inst {
                    *dst = remap(*dst);
                }
                if let epo::rtl::Inst::Call { dst: Some(d), .. } = inst {
                    *d = remap(*d);
                }
                inst.visit_exprs_mut(&mut |e| {
                    e.visit_mut(&mut |sub| {
                        if let epo::rtl::Expr::Reg(r) = sub {
                            *r = remap(*r);
                        }
                    });
                });
            }
        }
        for p in &mut g.params {
            *p = remap(*p);
        }
        // Renaming registers must not change identity...
        prop_assert_eq!(epo::rtl::canon::fingerprint(&g), fp, "renamed:\n{}", g);
        // ...but actually changing the code must.
        if let Some(first_assign) = f
            .blocks
            .iter_mut()
            .flat_map(|b| b.insts.iter_mut())
            .find_map(|i| match i {
                epo::rtl::Inst::Assign { src, .. } => Some(src),
                _ => None,
            })
        {
            *first_assign = epo::rtl::Expr::Const(123454321);
            prop_assert_ne!(epo::rtl::canon::fingerprint(&f), fp);
        }
    }
}
