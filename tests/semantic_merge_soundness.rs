//! Soundness of the semantic-equivalence merge tier: over the nine
//! pinned kernels, the semantic DAG must be an exact *quotient* of the
//! fingerprint DAG — the node set and fingerprint edges are
//! bit-identical under both tiers, every fingerprint-merge class (node)
//! lands in exactly one semantic signature class, class representatives
//! carry pairwise-distinct signatures, and the answers the space exists
//! to produce (the dynamic-count-optimal leaf, the differential
//! oracle's verdict) are identical under both tiers. The whole battery
//! also runs under jobs 0, 2 and 8 — the semantic tier inherits the
//! bit-identical-for-any-job-count guarantee — and under paranoid
//! escalation, which must refute nothing on real spaces.

use std::collections::{HashMap, HashSet};

use epo::explore::enumerate::{enumerate, enumerate_semantic, Config};
use epo::explore::oracle::{self, OracleConfig};
use epo::explore::rng::Rng;
use epo::explore::semantic::{SemanticConfig, SemanticContext, Signature};
use epo::explore::space::NodeId;
use epo::frontend::fuzz::{FuzzProgram, ENTRY};
use epo::opt::Target;
use epo::sim::{Machine, SimEngine};
use exhaustive_phase_order as epo;

/// The nine pinned kernels spanning all six MiBench benchmarks (the same
/// list as `sim_engine_equivalence.rs`).
const KERNELS: &[(&str, &str)] = &[
    ("bitcount", "bit_count"),
    ("bitcount", "bit_shifter"),
    ("bitcount", "ntbl_bitcount"),
    ("dijkstra", "dequeue"),
    ("fft", "fix_mpy"),
    ("fft", "reverse_bits"),
    ("jpeg", "range_limit"),
    ("sha", "rotl"),
    ("stringsearch", "lower"),
];

fn enum_config() -> Config {
    Config { max_nodes: 5_000, ..Config::default() }
}

fn sem_config() -> SemanticConfig {
    SemanticConfig { battery: 3, ..SemanticConfig::default() }
}

fn oracle_config() -> OracleConfig {
    OracleConfig { battery: 3, ..OracleConfig::default() }
}

/// Signatures of every node of a space, recomputed independently
/// through a fresh context (same battery the semantic enumeration
/// used) — the test's own evidence, not the enumeration's bookkeeping.
fn space_signatures(
    program: &epo::rtl::Program,
    f: &epo::rtl::Function,
    space: &epo::explore::space::SearchSpace,
    target: &Target,
) -> Vec<Signature> {
    let mut ctx = SemanticContext::new(program, f, &sem_config(), false);
    oracle::materialize_all(space, f, target).iter().map(|g| ctx.signature(g)).collect()
}

/// The quotient property, per kernel: the two tiers explore the same
/// space, and partitioning its nodes by independently recomputed
/// behavioral signature reproduces exactly the class structure the
/// semantic tier recorded.
#[test]
fn semantic_space_is_a_quotient_of_the_fingerprint_space() {
    let target = Target::default();
    for (bench_name, func) in KERNELS {
        let bench = epo::benchmarks::find(bench_name).unwrap();
        let program = bench.compile().unwrap();
        let f = program.function(func).unwrap();
        let e_fp = enumerate(f, &target, &enum_config());
        let e_sem = enumerate_semantic(&program, f, &target, &enum_config(), &sem_config());
        assert!(e_fp.outcome.is_complete(), "{bench_name}::{func}: fingerprint search truncated");
        assert!(e_sem.outcome.is_complete(), "{bench_name}::{func}: semantic search truncated");

        // The fingerprint tier knows nothing of classes…
        assert_eq!(e_fp.stats.sem_merges, 0, "{bench_name}::{func}");
        assert_eq!(e_fp.space.sem_edge_count(), 0, "{bench_name}::{func}");
        assert_eq!(e_fp.space.sem_class_count(), e_fp.space.len(), "{bench_name}::{func}");

        // …and the semantic tier never changes the space it annotates:
        // same nodes, same fingerprint edges, same masks and weights.
        assert_eq!(e_fp.space.len(), e_sem.space.len(), "{bench_name}::{func}");
        assert_eq!(e_fp.stats.attempted_phases, e_sem.stats.attempted_phases);
        assert_eq!(e_fp.stats.active_attempts, e_sem.stats.active_attempts);
        for (id, n) in e_fp.space.iter() {
            let m = e_sem.space.node(id);
            assert_eq!(m.fp, n.fp, "{bench_name}::{func} node {id}");
            assert_eq!(m.active_mask, n.active_mask, "{bench_name}::{func} node {id}");
            assert_eq!(m.children, n.children, "{bench_name}::{func} node {id}");
            assert_eq!(m.weight, n.weight, "{bench_name}::{func} node {id}");
            assert_eq!(m.discovered_from, n.discovered_from, "{bench_name}::{func} node {id}");
        }

        // Recompute every node's signature from scratch and partition.
        let sigs = space_signatures(&program, f, &e_sem.space, &target);
        let mut classes: HashMap<&Signature, Vec<NodeId>> = HashMap::new();
        for (id, _) in e_sem.space.iter() {
            classes.entry(&sigs[id.0 as usize]).or_default().push(id);
        }

        // Every fingerprint-merge class (node) lands in exactly one
        // semantic class: its recorded representative is a founder
        // (rep of itself) with the identical signature, and all
        // signature-equal nodes agree on that representative.
        for (id, _) in e_sem.space.iter() {
            let rep = e_sem.space.sem_rep(id);
            assert_eq!(
                e_sem.space.sem_rep(rep),
                rep,
                "{bench_name}::{func}: representative {rep} of {id} is not a founder"
            );
            assert_eq!(
                sigs[id.0 as usize], sigs[rep.0 as usize],
                "{bench_name}::{func}: node {id} merged into a different behavior {rep}"
            );
        }
        for (sig, members) in &classes {
            let reps: HashSet<NodeId> = members.iter().map(|&id| e_sem.space.sem_rep(id)).collect();
            assert_eq!(
                reps.len(),
                1,
                "{bench_name}::{func}: one signature split across representatives \
                 {reps:?} ({sig:?})"
            );
        }

        // The class count the tier reports is exactly the number of
        // distinct signatures, and the merges account for the rest.
        let distinct = classes.len();
        assert_eq!(e_sem.space.sem_class_count(), distinct, "{bench_name}::{func}");
        assert_eq!(
            e_sem.space.len() - e_sem.stats.sem_merges as usize,
            distinct,
            "{bench_name}::{func}: merges do not account for the collapse"
        );
        assert_eq!(e_sem.space.sem_edge_count(), e_sem.stats.sem_merges as usize);
        // The quotient is a genuine collapse on every kernel.
        assert!(
            distinct < e_sem.space.len(),
            "{bench_name}::{func}: no behavioral redundancy found at all"
        );
    }
}

/// The oracle answers the same under both tiers: clean verdicts, and the
/// identical optimal leaf dynamic count.
#[test]
fn optimal_leaf_dynamics_are_tier_invariant() {
    let target = Target::default();
    for (bench_name, func) in KERNELS {
        let bench = epo::benchmarks::find(bench_name).unwrap();
        let program = bench.compile().unwrap();
        let f = program.function(func).unwrap();
        let e_fp = enumerate(f, &target, &enum_config());
        let e_sem = enumerate_semantic(&program, f, &target, &enum_config(), &sem_config());
        let oc = oracle_config();
        let r_fp = oracle::verify(&program, f, &e_fp, &target, &oc);
        let r_sem = oracle::verify(&program, f, &e_sem, &target, &oc);
        assert!(
            r_fp.is_clean(),
            "{bench_name}::{func}: fingerprint findings: {:#?}",
            r_fp.findings
        );
        assert!(r_sem.is_clean(), "{bench_name}::{func}: semantic findings: {:#?}", r_sem.findings);
        let best_fp = r_fp.best_leaf().expect("fingerprint space has leaves");
        let best_sem = r_sem.best_leaf().expect("semantic space has leaves");
        assert_eq!(
            best_fp.dynamic, best_sem.dynamic,
            "{bench_name}::{func}: optimal leaf cost differs between tiers"
        );
        assert_eq!(best_fp.node, best_sem.node, "{bench_name}::{func}");
        // The semantic report re-validated every semantic merge edge.
        assert_eq!(r_sem.sem_paths, e_sem.space.sem_edge_count(), "{bench_name}::{func}");
        assert!(r_sem.sem_paths > 0, "{bench_name}::{func}: no merges were re-validated");
        assert_eq!(r_fp.sem_paths, 0, "{bench_name}::{func}");
    }
}

/// The semantic tier is bit-identical for any job count: jobs 0 (serial),
/// 2 and 8 must produce the same nodes, edges, classes and counters.
#[test]
fn semantic_enumeration_is_job_count_invariant() {
    let target = Target::default();
    for (bench_name, func) in KERNELS {
        let bench = epo::benchmarks::find(bench_name).unwrap();
        let program = bench.compile().unwrap();
        let f = program.function(func).unwrap();
        let serial = enumerate_semantic(&program, f, &target, &enum_config(), &sem_config());
        for jobs in [2usize, 8] {
            let config = Config { jobs, ..enum_config() };
            let par = enumerate_semantic(&program, f, &target, &config, &sem_config());
            assert_eq!(par.space.len(), serial.space.len(), "{bench_name}::{func} jobs={jobs}");
            assert_eq!(
                par.space.sem_class_count(),
                serial.space.sem_class_count(),
                "{bench_name}::{func} jobs={jobs}"
            );
            assert_eq!(par.stats.sem_merges, serial.stats.sem_merges, "{bench_name}::{func}");
            assert_eq!(par.stats.attempted_phases, serial.stats.attempted_phases);
            assert_eq!(par.stats.active_attempts, serial.stats.active_attempts);
            for (id, n) in serial.space.iter() {
                let m = par.space.node(id);
                assert_eq!(m.fp, n.fp, "{bench_name}::{func} jobs={jobs} node {id}");
                assert_eq!(m.active_mask, n.active_mask, "{bench_name}::{func} jobs={jobs}");
                assert_eq!(m.children, n.children, "{bench_name}::{func} jobs={jobs}");
                assert_eq!(m.sem_children, n.sem_children, "{bench_name}::{func} jobs={jobs}");
                assert_eq!(m.weight, n.weight, "{bench_name}::{func} jobs={jobs}");
            }
        }
    }
}

/// 200 randomly generated MiniC programs through the paranoid semantic
/// tier: every accepted merge is cross-validated against the fuzzer's
/// reference interpreter — each merged instance and its class
/// representative must compute exactly what the reference computes on
/// fresh inputs the signature battery never saw — and paranoid
/// escalation must refute nothing across the whole corpus.
#[test]
fn fuzz_corpus_semantic_merges_agree_with_reference_interpreter() {
    let target = Target::default();
    let sc = SemanticConfig { battery: 2, ..SemanticConfig::default() };
    let config = Config { max_nodes: 120, paranoid: true, ..Config::default() };
    let (mut total_merges, mut total_checked) = (0u64, 0u64);
    for seed in 0..200u64 {
        let mut rng = Rng::seed_from_u64(0x5EED_5E3A ^ seed);
        let fp = FuzzProgram::generate(&mut rng);
        let program = fp.compile().unwrap_or_else(|e| {
            panic!("seed {seed}: generated source failed to compile: {e}\n{}", fp.source)
        });
        let f = program.function(ENTRY).unwrap();
        let e = enumerate_semantic(&program, f, &target, &config, &sc);
        assert_eq!(
            e.stats.sem_collisions, 0,
            "seed {seed}: paranoid escalation refuted a merge\n{}",
            fp.source
        );
        // A truncated search may escalate an attempt it then drops at
        // the node cap, so only ≥ holds here (equality is asserted on
        // the complete kernel spaces above).
        assert!(e.stats.sem_escalations >= e.stats.sem_merges, "seed {seed}");
        total_merges += e.stats.sem_merges;
        if e.stats.sem_merges == 0 {
            continue;
        }
        // The oracle re-validates each semantic merge edge on the
        // battery the merge was accepted on.
        let oc = OracleConfig { battery: sc.battery, ..oracle_config() };
        let report = oracle::verify(&program, f, &e, &target, &oc);
        assert!(report.is_clean(), "seed {seed}: findings {:#?}\n{}", report.findings, fp.source);
        // Cross-validation on inputs no battery saw: the reference
        // interpreter is the independent arbiter.
        let instances = oracle::materialize_all(&e.space, f, &target);
        let mut m = Machine::with_mem_size(&program, sc.mem_size);
        m.set_engine(SimEngine::Threaded);
        for (id, _) in e.space.iter() {
            let rep = e.space.sem_rep(id);
            if rep == id {
                continue;
            }
            let fresh: Vec<[i32; 3]> = (0..3).map(|_| FuzzProgram::gen_args(&mut rng)).collect();
            let args: Vec<Vec<i32>> = fresh.iter().map(|a| a.to_vec()).collect();
            let merged = m.run_battery(&instances[id.0 as usize], &args, sc.fuel);
            let rep_obs = m.run_battery(&instances[rep.0 as usize], &args, sc.fuel);
            for (i, a) in fresh.iter().enumerate() {
                let expected = fp.reference(*a);
                let (got, _) = &merged[i];
                let (rg, _) = &rep_obs[i];
                assert_eq!(
                    got.clone().map(|(v, _)| v),
                    Ok(expected),
                    "seed {seed} node {id} args {a:?}: merged instance disagrees with the \
                     reference\n{}",
                    fp.source
                );
                assert_eq!(
                    got, rg,
                    "seed {seed} node {id} args {a:?}: merged instance and representative \
                     {rep} diverge\n{}",
                    fp.source
                );
            }
            total_checked += 1;
        }
    }
    // The corpus must actually exercise the tier.
    assert!(total_merges >= 50, "corpus produced only {total_merges} semantic merges");
    assert_eq!(total_checked, total_merges, "every accepted merge was cross-validated");
}

/// Paranoid escalation re-executes every signature hit on the extended
/// battery; on real spaces — where merged instances are genuinely
/// equivalent — it must refute nothing, and the quotient must come out
/// exactly as without it.
#[test]
fn paranoid_escalation_refutes_nothing_on_real_spaces() {
    let target = Target::default();
    for (bench_name, func) in KERNELS {
        let bench = epo::benchmarks::find(bench_name).unwrap();
        let program = bench.compile().unwrap();
        let f = program.function(func).unwrap();
        let lax = enumerate_semantic(&program, f, &target, &enum_config(), &sem_config());
        let config = Config { paranoid: true, ..enum_config() };
        let e = enumerate_semantic(&program, f, &target, &config, &sem_config());
        assert_eq!(e.stats.sem_collisions, 0, "{bench_name}::{func}: escalation refuted a merge");
        assert_eq!(e.stats.collisions, 0, "{bench_name}::{func}: fingerprint collision");
        // Every semantic merge was escalated exactly once, and the
        // verdicts never changed the quotient.
        assert_eq!(e.stats.sem_escalations, e.stats.sem_merges, "{bench_name}::{func}");
        assert_eq!(e.space.len(), lax.space.len(), "{bench_name}::{func}");
        assert_eq!(e.stats.sem_merges, lax.stats.sem_merges, "{bench_name}::{func}");
        assert_eq!(e.space.sem_class_count(), lax.space.sem_class_count(), "{bench_name}::{func}");
    }
}
