//! Campaign persistence, end to end through the facade: the on-disk
//! result store round-trips losslessly, rejects damage, and an
//! interrupted-then-resumed campaign over a real MiBench program
//! converges on bytes identical to an uninterrupted run's.

use std::path::PathBuf;
use std::sync::Arc;

use exhaustive_phase_order as epo;

use epo::explore::campaign::store::{ResultStore, StoreError};
use epo::explore::campaign::{self, CampaignConfig, FunctionTask, NullObserver};
use epo::explore::semantic::SemanticConfig;
use epo::explore::Config;
use epo::opt::Target;

/// Every function of the suite's smallest program, under a node cap that
/// keeps each space a sub-second search.
fn bitcount_tasks() -> Vec<FunctionTask> {
    let b = epo::benchmarks::find("bitcount").expect("bitcount is in the suite");
    b.compile()
        .unwrap()
        .functions
        .into_iter()
        .map(|f| FunctionTask { name: format!("bitcount::{}", f.name), func: f, program: None })
        .collect()
}

fn config() -> CampaignConfig {
    CampaignConfig {
        enumerate: Config { max_nodes: 400, ..Config::default() },
        jobs: 2,
        ..CampaignConfig::default()
    }
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("epo_campaign_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("campaign.store")
}

#[test]
fn store_round_trips_through_disk() {
    let path = tmp("roundtrip");
    std::fs::remove_file(&path).ok();
    let summary =
        campaign::run(bitcount_tasks(), &Target::default(), Some(&path), &config(), &NullObserver)
            .unwrap();
    assert!(summary.records.len() >= 3, "bitcount should hold several functions");

    let bytes = std::fs::read(&path).unwrap();
    let store = ResultStore::from_bytes(&bytes).unwrap();
    assert_eq!(store.records, summary.records, "disk records match the summary");
    assert_eq!(store.to_bytes(), bytes, "re-encoding is byte-stable");
    std::fs::remove_file(&path).ok();
}

#[test]
fn damaged_stores_are_rejected() {
    let path = tmp("damage");
    std::fs::remove_file(&path).ok();
    campaign::run(bitcount_tasks(), &Target::default(), Some(&path), &config(), &NullObserver)
        .unwrap();
    let good = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // Truncation at any point is caught.
    for cut in [0, 1, good.len() / 2, good.len() - 1] {
        assert!(
            matches!(ResultStore::from_bytes(&good[..cut]), Err(StoreError::Corrupt(_))),
            "truncation to {cut} bytes must be rejected"
        );
    }
    // A flipped payload bit fails the record CRC.
    let mut flipped = good.clone();
    let target = good.len() - 9;
    flipped[target] ^= 0x40;
    assert!(
        matches!(ResultStore::from_bytes(&flipped), Err(StoreError::Corrupt(_))),
        "bit flip at {target} must be rejected"
    );
}

/// Same tasks with the program attached, for semantic-tier campaigns.
fn bitcount_semantic_tasks() -> Vec<FunctionTask> {
    let program = Arc::new(
        epo::benchmarks::find("bitcount").expect("bitcount is in the suite").compile().unwrap(),
    );
    program
        .functions
        .iter()
        .map(|f| FunctionTask {
            name: format!("bitcount::{}", f.name),
            func: f.clone(),
            program: Some(Arc::clone(&program)),
        })
        .collect()
}

#[test]
fn interrupted_campaign_resumes_to_identical_bytes() {
    let target = Target::default();
    let tasks = bitcount_tasks();
    let total = tasks.len();

    let reference = tmp("reference");
    std::fs::remove_file(&reference).ok();
    campaign::run(tasks.clone(), &target, Some(&reference), &config(), &NullObserver).unwrap();
    let want = std::fs::read(&reference).unwrap();
    std::fs::remove_file(&reference).ok();

    // Kill after 1 function, after half, and one short of done — resuming
    // must always converge on the reference bytes, serial or parallel.
    for cut in [1, total / 2, total - 1] {
        for jobs in [1usize, 4] {
            let path = tmp(&format!("cut{cut}_j{jobs}"));
            std::fs::remove_file(&path).ok();
            let interrupted = CampaignConfig { jobs, stop_after: Some(cut), ..config() };
            let s1 =
                campaign::run(tasks.clone(), &target, Some(&path), &interrupted, &NullObserver)
                    .unwrap();
            assert!(s1.interrupted);
            assert_eq!(s1.explored, cut);

            let resume = CampaignConfig { jobs, resume: true, ..config() };
            let s2 =
                campaign::run(tasks.clone(), &target, Some(&path), &resume, &NullObserver).unwrap();
            assert_eq!(s2.resumed, cut);
            assert_eq!(s2.explored, total - cut);
            assert_eq!(
                std::fs::read(&path).unwrap(),
                want,
                "cut={cut} jobs={jobs}: resumed store differs from uninterrupted reference"
            );
            std::fs::remove_file(&path).ok();
        }
    }
}

/// The semantic merge tier through the campaign driver: the store is
/// byte-identical for any worker count, the semantic counters survive
/// the disk round trip, and killing the campaign at every checkpoint
/// boundary then resuming converges on the uninterrupted bytes — the
/// `--merge-tier semantic` analogue of the fingerprint resume test.
#[test]
fn semantic_campaign_resumes_to_identical_bytes_across_job_counts() {
    let target = Target::default();
    let tasks = bitcount_semantic_tasks();
    let total = tasks.len();
    let sem_config = || CampaignConfig {
        semantic: Some(SemanticConfig { battery: 2, ..SemanticConfig::default() }),
        ..config()
    };

    let reference = tmp("sem_reference");
    std::fs::remove_file(&reference).ok();
    campaign::run(tasks.clone(), &target, Some(&reference), &sem_config(), &NullObserver).unwrap();
    let want = std::fs::read(&reference).unwrap();
    std::fs::remove_file(&reference).ok();

    // The tier actually merged something, and the counters round-trip.
    let store = ResultStore::from_bytes(&want).unwrap();
    let merges: u64 = store.records.iter().map(|r| r.sem_merges).sum();
    assert!(merges > 0, "semantic campaign recorded no merges");
    assert!(store.records.iter().all(|r| r.sem_collisions == 0));

    // Any worker count produces the same bytes.
    for jobs in [0usize, 2, 8] {
        let path = tmp(&format!("sem_j{jobs}"));
        std::fs::remove_file(&path).ok();
        let c = CampaignConfig { jobs, ..sem_config() };
        campaign::run(tasks.clone(), &target, Some(&path), &c, &NullObserver).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            want,
            "jobs={jobs}: semantic store differs across worker counts"
        );
        std::fs::remove_file(&path).ok();
    }

    // Kill at every checkpoint boundary, then resume.
    for cut in 1..total {
        let path = tmp(&format!("sem_cut{cut}"));
        std::fs::remove_file(&path).ok();
        let interrupted = CampaignConfig { stop_after: Some(cut), ..sem_config() };
        let s1 = campaign::run(tasks.clone(), &target, Some(&path), &interrupted, &NullObserver)
            .unwrap();
        assert!(s1.interrupted);

        let resume = CampaignConfig { resume: true, ..sem_config() };
        let s2 =
            campaign::run(tasks.clone(), &target, Some(&path), &resume, &NullObserver).unwrap();
        assert_eq!(s2.resumed, cut);
        assert_eq!(s2.explored, total - cut);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            want,
            "cut={cut}: resumed semantic store differs from uninterrupted reference"
        );
        std::fs::remove_file(&path).ok();
    }
}
