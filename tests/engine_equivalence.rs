//! The scratch-buffer engine must be bit-identical to the reference
//! engine: same nodes, same edges, same counters, for every job count.
//! These tests are the contract that lets `Engine::Scratch` be the
//! default while `Engine::Reference` remains a living witness.

use exhaustive_phase_order as epo;

use epo::explore::enumerate::{enumerate, Config, Engine, Enumeration};
use epo::opt::facts::Facts;
use epo::opt::{attempt, PhaseId, Target};

/// Small-but-interesting functions from across the suite.
fn sample_functions(max_insts: usize) -> Vec<(String, epo::rtl::Function)> {
    let mut out = Vec::new();
    for b in epo::benchmarks::all() {
        let p = b.compile().unwrap();
        for f in p.functions {
            if f.inst_count() <= max_insts {
                out.push((format!("{}::{}", b.name, f.name), f));
            }
        }
    }
    out
}

/// Every observable except wall-clock must match between two runs.
fn assert_identical(name: &str, a: &Enumeration, b: &Enumeration) {
    assert_eq!(a.outcome.is_complete(), b.outcome.is_complete(), "{name}: outcome");
    assert_eq!(a.stats.attempted_phases, b.stats.attempted_phases, "{name}: attempted");
    assert_eq!(a.stats.active_attempts, b.stats.active_attempts, "{name}: active");
    assert_eq!(a.stats.phases_applied, b.stats.phases_applied, "{name}: applied");
    assert_eq!(a.stats.collisions, b.stats.collisions, "{name}: collisions");
    assert_eq!(a.space.len(), b.space.len(), "{name}: node count");
    assert_eq!(a.space.leaf_count(), b.space.leaf_count(), "{name}: leaf count");
    for (id, na) in a.space.iter() {
        let nb = b.space.node(id);
        assert_eq!(na.fp, nb.fp, "{name}: node {id} fp");
        assert_eq!(na.flags, nb.flags, "{name}: node {id} flags");
        assert_eq!(na.level, nb.level, "{name}: node {id} level");
        assert_eq!(na.inst_count, nb.inst_count, "{name}: node {id} inst_count");
        assert_eq!(na.cf_sig, nb.cf_sig, "{name}: node {id} cf_sig");
        assert_eq!(na.active_mask, nb.active_mask, "{name}: node {id} mask");
        assert_eq!(na.children, nb.children, "{name}: node {id} children");
        assert_eq!(na.discovered_from, nb.discovered_from, "{name}: node {id} provenance");
        assert_eq!(na.weight, nb.weight, "{name}: node {id} weight");
    }
}

#[test]
fn scratch_engine_matches_reference_engine_for_every_job_count() {
    let target = Target::default();
    let funcs = sample_functions(45);
    assert!(funcs.len() >= 3, "need at least three kernels for the suite");
    for (name, f) in funcs {
        let reference =
            enumerate(&f, &target, &Config { engine: Engine::Reference, ..Config::default() });
        for jobs in [0usize, 2, 8] {
            let scratch = enumerate(
                &f,
                &target,
                &Config { engine: Engine::Scratch, jobs, ..Config::default() },
            );
            assert_identical(&format!("{name} jobs={jobs}"), &reference, &scratch);
        }
    }
}

#[test]
fn engines_agree_in_paranoid_and_naive_replay_modes() {
    // The scratch engine rebuilds its buffer differently under naive
    // replay (copy root, replay the sequence) and feeds the paranoid
    // byte check from the reusable canonicalizer — both paths must stay
    // bit-identical to the reference engine too.
    use epo::explore::enumerate::ReplayMode;
    let target = Target::default();
    for (name, f) in sample_functions(35) {
        for replay in [ReplayMode::PrefixSharing, ReplayMode::NaiveReplay] {
            let base = Config { replay, paranoid: true, ..Config::default() };
            let reference =
                enumerate(&f, &target, &Config { engine: Engine::Reference, ..base.clone() });
            let scratch =
                enumerate(&f, &target, &Config { engine: Engine::Scratch, ..base.clone() });
            assert_eq!(reference.stats.collisions, 0, "{name}");
            assert_identical(&format!("{name} {replay:?}"), &reference, &scratch);
        }
    }
}

#[test]
fn prefilters_are_sound_on_every_enumerated_instance() {
    // For every instance the search ever visits, a phase the prefilter
    // rules out must in fact be dormant when attempted for real. This is
    // the empirical half of the soundness argument in `vpo_opt::facts`;
    // the analytical half lives in that module's docs.
    let target = Target::default();
    let mut checked = 0u64;
    for (name, f) in sample_functions(40) {
        let e = enumerate(&f, &target, &Config::default());
        if !e.outcome.is_complete() {
            continue;
        }
        for (id, _) in e.space.iter() {
            // Rematerialize the instance by replaying its discovery
            // sequence from the root.
            let mut g = f.clone();
            for p in e.space.discovery_sequence(id) {
                let outcome = attempt(&mut g, p, &target);
                assert!(outcome.active, "{name}: node {id} replay had a dormant edge");
            }
            let facts = Facts::of(&g);
            for phase in PhaseId::ALL {
                if phase.can_be_active(&facts) {
                    continue;
                }
                let outcome = attempt(&mut g.clone(), phase, &target);
                assert!(
                    !outcome.active,
                    "{name}: node {id}: prefilter ruled out {phase:?} but it was active"
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 0, "prefilters never fired; the soundness test is vacuous");
}
