//! Invariants of the control-flow and dataflow analyses, checked on the
//! benchmark kernels at every stage of optimization (the analyses must
//! stay correct on *any* intermediate code the phases can produce).

use exhaustive_phase_order as epo;

use epo::opt::{attempt, PhaseId, Target};
use epo::rtl::cfg::Cfg;
use epo::rtl::dom::Dominators;
use epo::rtl::liveness::{Item, Liveness};
use epo::rtl::loops::find_loops;
use epo::rtl::Function;

/// Every suite function, naive and after several distinct phase prefixes.
fn stages() -> Vec<(String, Function)> {
    let target = Target::default();
    let prefixes: [&[PhaseId]; 4] = [
        &[],
        &[PhaseId::InsnSelect, PhaseId::RegAlloc],
        &[PhaseId::Cse, PhaseId::InsnSelect, PhaseId::DeadAssign],
        &[
            PhaseId::InsnSelect,
            PhaseId::RegAlloc,
            PhaseId::Cse,
            PhaseId::LoopJumps,
            PhaseId::LoopUnroll,
            PhaseId::UselessJump,
        ],
    ];
    let mut out = Vec::new();
    for b in epo::benchmarks::all() {
        let p = b.compile().unwrap();
        for f in &p.functions {
            if f.inst_count() > 150 {
                continue;
            }
            for (i, prefix) in prefixes.iter().enumerate() {
                let mut g = f.clone();
                for &ph in *prefix {
                    attempt(&mut g, ph, &target);
                }
                out.push((format!("{}::{}@{}", b.name, f.name, i), g));
            }
        }
    }
    out
}

#[test]
fn dominator_invariants() {
    for (name, f) in stages() {
        let cfg = Cfg::build(&f);
        let dom = Dominators::compute(&cfg);
        let reach = cfg.reachable();
        for b in 0..cfg.len() {
            if !reach[b] {
                continue;
            }
            // The entry dominates every reachable block.
            assert!(dom.dominates(0, b), "{name}: entry !dom {b}");
            // Every block dominates itself.
            assert!(dom.dominates(b, b), "{name}: {b} !dom itself");
            // The immediate dominator is a strict dominator (except entry).
            if b != 0 {
                let id = dom.idom(b).unwrap_or_else(|| panic!("{name}: no idom for {b}"));
                assert!(dom.dominates(id, b), "{name}: idom({b}) !dom {b}");
                // Every predecessor path passes through the idom.
                for &p in &cfg.preds[b] {
                    if reach[p] {
                        assert!(
                            dom.dominates(id, p) || id == b,
                            "{name}: pred {p} of {b} bypasses idom {id}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn loop_invariants() {
    for (name, f) in stages() {
        let cfg = Cfg::build(&f);
        let dom = Dominators::compute(&cfg);
        for l in find_loops(&cfg) {
            // The header dominates every loop block.
            for &b in &l.body {
                assert!(dom.dominates(l.header, b), "{name}: header !dom body {b}");
            }
            // Every latch is in the body and branches to the header.
            for &latch in &l.latches {
                assert!(l.contains(latch), "{name}: latch outside body");
                assert!(
                    cfg.succs[latch].contains(&l.header),
                    "{name}: latch {latch} has no back edge"
                );
            }
            assert!(l.depth >= 1, "{name}: bad nesting depth");
        }
    }
}

#[test]
fn liveness_soundness() {
    // Every use of a register is covered: walking any block, each used
    // register is either defined earlier in the block or live-in.
    for (name, f) in stages() {
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        let reach = cfg.reachable();
        for (bi, b) in f.blocks.iter().enumerate() {
            if !reach[bi] {
                continue;
            }
            let mut defined: Vec<epo::rtl::Reg> = Vec::new();
            for inst in &b.insts {
                let mut uses = Vec::new();
                inst.collect_uses(&mut uses);
                for u in uses {
                    let covered = defined.contains(&u)
                        || lv
                            .index_of(Item::Reg(u))
                            .map(|i| lv.live_in[bi].contains(i))
                            .unwrap_or(false)
                        // Parameters are defined at entry.
                        || (bi == 0 && f.params.contains(&u));
                    assert!(covered, "{name}: use of {u} in block {bi} not covered by liveness");
                }
                if let Some(d) = inst.def() {
                    defined.push(d);
                }
            }
        }
    }
}

#[test]
fn cfg_successor_predecessor_duality() {
    for (name, f) in stages() {
        let cfg = Cfg::build(&f);
        for b in 0..cfg.len() {
            for &s in &cfg.succs[b] {
                assert!(cfg.preds[s].contains(&b), "{name}: edge {b}->{s} missing reverse");
            }
            for &p in &cfg.preds[b] {
                assert!(cfg.succs[p].contains(&b), "{name}: edge {p}->{b} missing forward");
            }
        }
    }
}

#[test]
fn conditional_branches_terminate_blocks() {
    // The canonical-form invariant the forward dataflow analyses rely on:
    // a conditional branch is always the last instruction of its block.
    for (name, f) in stages() {
        for (bi, b) in f.blocks.iter().enumerate() {
            for (ii, inst) in b.insts.iter().enumerate() {
                if matches!(inst, epo::rtl::Inst::CondBranch { .. }) {
                    assert_eq!(
                        ii,
                        b.insts.len() - 1,
                        "{name}: mid-block conditional branch in block {bi}"
                    );
                }
            }
        }
    }
}
